// Package archive is the disk-backed authenticated store for tamper-
// evident logs and snapshot increments (docs/ARCHIVE_FORMAT.md). An
// archive directory holds one crc-framed append-only MANIFEST plus one
// tile file per node; segments — an epoch's log-entry run (a logcomp
// container) or one snapshot increment — are appended to the node's tile
// and indexed by a manifest record carrying the segment's SHA-256, so
// every byte read back is verified before it reaches a replay. Appends
// are crash-safe in the coordinator journal's mold: fsync-batched, with a
// truncation-tolerant open that cuts a torn tail back to the last valid
// record. Per node, the sequence of epoch payload hashes forms a Merkle
// log; LogRoot/ProveEpoch serve inclusion proofs for "this epoch run is
// in this archived log".
//
// A corrupted or truncated archive never yields a silent wrong verdict:
// reads surface precise errors, and audit integrations convert them into
// the same fault classes a tampered in-memory log or snapshot store does
// (CheckLog for entry segments, CheckSnapshot for increments).
package archive

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/logcomp"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
	"repro/internal/wire"
)

// nodeState is the manifest-derived state of one node.
type nodeState struct {
	name    string
	memSize int
	epochs  []epochRec
	snaps   []snapRec
	tail    int64 // end of the last indexed extent in the tile file
}

// Archive is an open archive directory. One goroutine may append while
// others read; all methods are safe for concurrent use. The zero value is
// not usable — call Open.
type Archive struct {
	// SyncEvery fsyncs after this many appended segments. <= 0 selects 16.
	SyncEvery int
	// SyncInterval fsyncs when this long has passed since the last fsync,
	// checked at each append. <= 0 selects 50ms.
	SyncInterval time.Duration

	mu            sync.Mutex
	dir           string
	manifest      *os.File // append handle, nil until first append
	nodes         map[string]*nodeState
	order         []string            // node names in manifest order
	writers       map[string]*os.File // tile append handles
	readers       map[string]*os.File // tile read handles
	dirty         map[string]bool     // tiles with unsynced writes
	unsynced      int
	lastSync      time.Time
	manifestBytes int64
	// broken is the first tile/manifest write or sync failure. A failed
	// write can leave the O_APPEND offset ahead of the indexed tail, so
	// further appends would commit records whose extents no longer match
	// the physical payload; every subsequent append returns this sticky
	// error instead. Reads stay available — archived extents are intact.
	broken error
}

// Open opens (creating if needed) the archive in dir, replays the
// manifest up to its valid prefix, drops records whose payload extent a
// crash left torn, truncates tile files back to their last indexed byte,
// and compacts the manifest when the valid prefix differs from the file.
func Open(dir string) (*Archive, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: dir: %w", err)
	}
	a := &Archive{
		dir:     dir,
		nodes:   make(map[string]*nodeState),
		writers: make(map[string]*os.File),
		readers: make(map[string]*os.File),
		dirty:   make(map[string]bool),
	}
	raw, err := os.ReadFile(a.manifestPath())
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("archive: reading manifest: %w", err)
	}
	a.replayManifest(raw)

	// Compact: rewrite the surviving records atomically when the file
	// holds anything else (a torn tail, or records dropped for torn
	// payloads), so appends never land after garbage.
	compacted := a.marshalManifest()
	if !bytes.Equal(compacted, raw) {
		if err := writeFileDurable(a.manifestPath(), a.dir, compacted); err != nil {
			return nil, fmt.Errorf("archive: compacting manifest: %w", err)
		}
	}
	a.manifestBytes = int64(len(compacted))
	a.lastSync = time.Now()

	// Drop orphan payload bytes a crash left beyond the last indexed
	// extent, so future appends start exactly at the tail the manifest
	// describes.
	for _, ns := range a.nodes {
		p := a.tilePath(ns.name)
		if fi, err := os.Stat(p); err == nil && fi.Size() > ns.tail {
			if err := os.Truncate(p, ns.tail); err != nil {
				return nil, fmt.Errorf("archive: truncating %s tile: %w", ns.name, err)
			}
		}
	}
	return a, nil
}

func (a *Archive) manifestPath() string { return filepath.Join(a.dir, ManifestName) }

func (a *Archive) tilePath(node string) string { return filepath.Join(a.dir, node+TileSuffix) }

// replayManifest folds the manifest's valid prefix into node state. The
// prefix ends at the first torn or corrupt frame, at the first record
// that fails semantic validation (wrong order, unknown node, unknown
// kind), or at the first record whose extent exceeds its tile file — the
// record was durable before its payload, which only a crash produces, and
// later records were appended later still.
func (a *Archive) replayManifest(raw []byte) {
	tileSize := make(map[string]int64)
	b := raw
	for {
		body, rest, ok := nextFrame(b)
		if !ok {
			return
		}
		if !a.applyRecord(body, tileSize) {
			return
		}
		b = rest
	}
}

// applyRecord folds one manifest record body; false ends the prefix.
func (a *Archive) applyRecord(body []byte, tileSize map[string]int64) bool {
	if len(body) == 0 {
		return false
	}
	r := &recReader{b: body[1:]}
	switch body[0] {
	case RecordNode:
		node := r.str()
		memSize := int(r.uvarint())
		if !r.done() || node == "" || memSize < 0 || a.nodes[node] != nil {
			return false
		}
		a.addNode(node, memSize)
		if sz, err := fileSize(a.tilePath(node)); err == nil {
			tileSize[node] = sz
		}
		return true
	case RecordEpoch:
		node, idx, e, err := parseEpochRecord(r)
		if err != nil {
			return false
		}
		ns := a.nodes[node]
		// Subtraction form: e.Len is attacker-controlled and e.Off+e.Len
		// can wrap negative, passing a sum-based bound.
		if ns == nil || idx != len(ns.epochs) || e.Off != ns.tail ||
			e.Len > tileSize[node] || e.Off > tileSize[node]-e.Len {
			return false
		}
		if len(ns.epochs) > 0 && !ns.epochs[len(ns.epochs)-1].Closed {
			// Only the final epoch may be unclosed; an append after it
			// could not have been produced by this writer.
			return false
		}
		ns.epochs = append(ns.epochs, e)
		ns.tail = e.Off + e.Len
		return true
	case RecordSnapshot:
		node, idx, s, err := parseSnapRecord(r)
		if err != nil {
			return false
		}
		ns := a.nodes[node]
		if ns == nil || idx != len(ns.snaps) || s.Off != ns.tail ||
			s.Len > tileSize[node] || s.Off > tileSize[node]-s.Len {
			return false
		}
		ns.snaps = append(ns.snaps, s)
		ns.tail = s.Off + s.Len
		return true
	default:
		return false
	}
}

// marshalManifest re-encodes the live state as a compact manifest image.
func (a *Archive) marshalManifest() []byte {
	var out []byte
	for _, name := range a.order {
		ns := a.nodes[name]
		out = appendFrame(out, marshalNodeRecord(ns.name, ns.memSize))
		// Interleave in tile order so extent contiguity (off == tail)
		// revalidates on the next open.
		ei, si := 0, 0
		for ei < len(ns.epochs) || si < len(ns.snaps) {
			switch {
			case si >= len(ns.snaps), ei < len(ns.epochs) && ns.epochs[ei].Off < ns.snaps[si].Off:
				out = appendFrame(out, marshalEpochRecord(ns.name, ei, &ns.epochs[ei]))
				ei++
			default:
				out = appendFrame(out, marshalSnapRecord(ns.name, si, &ns.snaps[si]))
				si++
			}
		}
	}
	return out
}

func (a *Archive) addNode(node string, memSize int) *nodeState {
	ns := &nodeState{name: node, memSize: memSize}
	a.nodes[node] = ns
	a.order = append(a.order, node)
	return ns
}

func fileSize(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// writeFileDurable atomically replaces path with data: write to a temp
// file, fsync it, rename over path, fsync the directory. A plain
// WriteFile+Rename can leave an empty or truncated file after a crash,
// which for the manifest would silently drop every archived record.
func writeFileDurable(path, dir string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Nodes returns the archived node names in first-appended order.
func (a *Archive) Nodes() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.order...)
}

// MemSize returns the node's guest memory size in bytes (zero when the
// node was archived without snapshots).
func (a *Archive) MemSize(node string) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ns, err := a.node(node)
	if err != nil {
		return 0, err
	}
	return ns.memSize, nil
}

func (a *Archive) node(name string) (*nodeState, error) {
	ns := a.nodes[name]
	if ns == nil {
		return nil, fmt.Errorf("archive: unknown node %q", name)
	}
	return ns, nil
}

// BeginNode declares a node before its first segment. memSize is the
// guest memory size the snapshot materializer rebuilds into (0 when the
// node carries no snapshots). Idempotent for an identical declaration.
func (a *Archive) BeginNode(node string, memSize int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.usableLocked(); err != nil {
		return err
	}
	if node == "" || len(node) > 255 {
		return fmt.Errorf("archive: invalid node name %q", node)
	}
	if ns := a.nodes[node]; ns != nil {
		if ns.memSize != memSize {
			return fmt.Errorf("archive: node %q already declared with memSize %d", node, ns.memSize)
		}
		return nil
	}
	if err := a.appendRecord(marshalNodeRecord(node, memSize), nil); err != nil {
		return err
	}
	a.addNode(node, memSize)
	return nil
}

// EpochMeta describes an epoch segment being appended: its starting
// snapshot linkage (zero for the boot epoch) and, when the epoch is
// closed by a snapshot entry, the closing snapshot's identity.
type EpochMeta struct {
	// Boot marks the first epoch, replayed from the reference image.
	Boot bool
	// StartSnap/StartSeq/StartRoot identify the snapshot the epoch
	// replays from (meaningful when !Boot).
	StartSnap uint32
	StartSeq  uint64
	StartRoot [32]byte
	// Closed is true when the epoch's final entry is a snapshot entry;
	// EndSnap/EndRoot/EndICount then describe that snapshot.
	Closed    bool
	EndSnap   uint32
	EndRoot   [32]byte
	EndICount uint64
}

// AppendEpoch archives one epoch's entry run as the node's next epoch
// segment. Entries must carry their chain hashes (the recorder's live log
// does); the final entry's hash is archived as the epoch's chain linkage.
func (a *Archive) AppendEpoch(node string, meta EpochMeta, entries []tevlog.Entry) error {
	if len(entries) == 0 {
		return fmt.Errorf("archive: empty epoch for %q", node)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.usableLocked(); err != nil {
		return err
	}
	ns, err := a.node(node)
	if err != nil {
		return err
	}
	if n := len(ns.epochs); n > 0 && !ns.epochs[n-1].Closed {
		return fmt.Errorf("archive: node %q log already ended (epoch %d is unclosed)", node, n-1)
	}
	payload := logcomp.CompressEntries(entries)
	rec := epochRec{
		Boot: meta.Boot, Closed: meta.Closed,
		StartSnap: meta.StartSnap, StartSeq: meta.StartSeq, StartRoot: meta.StartRoot,
		EndSnap: meta.EndSnap, EndRoot: meta.EndRoot, EndICount: meta.EndICount,
		EndHash:  entries[len(entries)-1].Hash,
		Entries:  len(entries),
		FirstSeq: entries[0].Seq,
		Off:      ns.tail,
		Len:      int64(len(payload)),
		Hash:     payloadHash(payload),
	}
	if err := a.appendSegment(ns, payload); err != nil {
		return err
	}
	if err := a.appendRecord(marshalEpochRecord(node, len(ns.epochs), &rec), ns); err != nil {
		return err
	}
	ns.epochs = append(ns.epochs, rec)
	ns.tail = rec.Off + rec.Len
	return nil
}

// AppendSnapshot archives one snapshot increment as the node's next
// snapshot segment. Increments must arrive in index order.
func (a *Archive) AppendSnapshot(node string, s *snapshot.Snapshot) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.usableLocked(); err != nil {
		return err
	}
	ns, err := a.node(node)
	if err != nil {
		return err
	}
	if s.Index != len(ns.snaps) {
		return fmt.Errorf("archive: snapshot %d for %q out of order (want %d)", s.Index, node, len(ns.snaps))
	}
	payload := marshalSnapshotPayload(s)
	rec := snapRec{
		Root: s.Root, MemRoot: s.MemRoot, ICount: s.ICount,
		Off: ns.tail, Len: int64(len(payload)), Hash: payloadHash(payload),
	}
	if err := a.appendSegment(ns, payload); err != nil {
		return err
	}
	if err := a.appendRecord(marshalSnapRecord(node, len(ns.snaps), &rec), ns); err != nil {
		return err
	}
	ns.snaps = append(ns.snaps, rec)
	ns.tail = rec.Off + rec.Len
	return nil
}

// appendSegment writes payload at the node's tile tail. Callers hold mu.
func (a *Archive) appendSegment(ns *nodeState, payload []byte) error {
	w := a.writers[ns.name]
	if w == nil {
		f, err := os.OpenFile(a.tilePath(ns.name), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("archive: opening %s tile: %w", ns.name, err)
		}
		a.writers[ns.name] = f
		w = f
	}
	if _, err := w.Write(payload); err != nil {
		return a.poisonLocked(fmt.Errorf("archive: writing %s tile: %w", ns.name, err))
	}
	a.dirty[ns.name] = true
	return nil
}

// poisonLocked records the archive's first write failure and marks it
// unusable for appends (see the broken field). Callers hold mu.
func (a *Archive) poisonLocked(err error) error {
	if a.broken == nil {
		a.broken = err
	}
	return err
}

// usableLocked rejects appends after a write failure. Callers hold mu.
func (a *Archive) usableLocked() error {
	if a.broken != nil {
		return fmt.Errorf("archive: unusable after earlier write failure: %w", a.broken)
	}
	return nil
}

// appendRecord frames and appends one manifest record, then applies the
// batched fsync policy: the record's tile (payload first, then manifest)
// is made durable every SyncEvery segments or SyncInterval. Callers hold
// mu. ns is the tile the record indexes, nil for node records.
func (a *Archive) appendRecord(body []byte, ns *nodeState) error {
	if a.manifest == nil {
		f, err := os.OpenFile(a.manifestPath(), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("archive: opening manifest: %w", err)
		}
		a.manifest = f
	}
	frame := appendFrame(nil, body)
	if _, err := a.manifest.Write(frame); err != nil {
		return a.poisonLocked(fmt.Errorf("archive: writing manifest: %w", err))
	}
	a.manifestBytes += int64(len(frame))
	a.unsynced++
	every := a.SyncEvery
	if every <= 0 {
		every = 16
	}
	interval := a.SyncInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	if a.unsynced >= every || time.Since(a.lastSync) >= interval {
		return a.syncLocked()
	}
	return nil
}

// syncLocked makes every appended segment durable: dirty tiles first —
// a manifest record must never be durable before the payload it indexes —
// then the manifest. Callers hold mu.
func (a *Archive) syncLocked() error {
	names := make([]string, 0, len(a.dirty))
	for name := range a.dirty {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := a.writers[name].Sync(); err != nil {
			return a.poisonLocked(fmt.Errorf("archive: syncing %s tile: %w", name, err))
		}
		delete(a.dirty, name)
	}
	if a.manifest != nil {
		if err := a.manifest.Sync(); err != nil {
			return a.poisonLocked(fmt.Errorf("archive: syncing manifest: %w", err))
		}
	}
	a.unsynced = 0
	a.lastSync = time.Now()
	return nil
}

// Sync forces every appended segment durable immediately.
func (a *Archive) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.syncLocked()
}

// Close syncs and releases every file handle. The archive is unusable
// afterwards.
func (a *Archive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	err := a.syncLocked()
	for _, f := range a.writers {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	for _, f := range a.readers {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if a.manifest != nil {
		if cerr := a.manifest.Close(); err == nil {
			err = cerr
		}
	}
	a.writers, a.readers, a.manifest = map[string]*os.File{}, map[string]*os.File{}, nil
	return err
}

// Bytes returns the archive's total on-disk size: manifest plus tiles.
func (a *Archive) Bytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := a.manifestBytes
	for _, ns := range a.nodes {
		total += ns.tail
	}
	return total
}

// WriteRecording archives one node's complete recording: every snapshot
// increment from sf, then the log partitioned into epoch segments at its
// snapshot entries — the same partition rule every audit engine derives,
// so dispatch jobs and stream epochs align with archived segments.
// Entries must carry chain hashes (a recorder's live log does). sf may be
// nil for a snapshot-free recording, which archives as one boot epoch.
func (a *Archive) WriteRecording(node string, entries []tevlog.Entry, sf *snapshot.StoreFile) error {
	memSize := 0
	if sf != nil {
		memSize = sf.MemSize
	}
	if err := a.BeginNode(node, memSize); err != nil {
		return err
	}
	if sf != nil {
		for _, s := range sf.Snaps {
			if err := a.AppendSnapshot(node, s); err != nil {
				return err
			}
		}
	}
	if len(entries) == 0 {
		return a.Sync()
	}
	var meta EpochMeta
	meta.Boot = true
	start := 0
	for i := range entries {
		e := &entries[i]
		if e.Type != tevlog.TypeSnapshot {
			continue
		}
		ev, err := wire.ParseEvent(e.Content)
		if err != nil {
			return fmt.Errorf("archive: %s entry %d snapshot event: %w", node, e.Seq, err)
		}
		meta.Closed = true
		meta.EndSnap, meta.EndRoot, meta.EndICount = ev.SnapIdx, ev.Root, ev.Landmark.ICount
		if err := a.AppendEpoch(node, meta, entries[start:i+1]); err != nil {
			return err
		}
		start = i + 1
		meta = EpochMeta{
			StartSnap: ev.SnapIdx, StartSeq: e.Seq, StartRoot: ev.Root,
		}
	}
	if start < len(entries) {
		meta.Closed = false
		if err := a.AppendEpoch(node, meta, entries[start:]); err != nil {
			return err
		}
	}
	return a.Sync()
}
