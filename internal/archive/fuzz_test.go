package archive

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/snapshot"
	"repro/internal/vm"
)

// FuzzManifestReplay feeds arbitrary bytes to the archive as a MANIFEST
// file. Open must never panic: it folds the valid prefix, compacts, and
// the surviving state must itself re-open identically (replay is a
// fixpoint — the crash-recovery guarantee for arbitrary torn tails).
func FuzzManifestReplay(f *testing.F) {
	// Seed with a real manifest so the fuzzer starts from valid framing.
	rec := &testRecording{node: "n1"}
	m := vm.NewMachine(2*vm.PageSize, nil)
	st := snapshot.NewStore(len(m.Mem))
	if _, err := st.Take(m, nil, nil); err != nil {
		f.Fatal(err)
	}
	rec.store = st
	dir := f.TempDir()
	a, err := Open(dir)
	if err != nil {
		f.Fatal(err)
	}
	if err := a.BeginNode("n1", len(m.Mem)); err != nil {
		f.Fatal(err)
	}
	sf := st.File()
	if err := a.AppendSnapshot("n1", sf.Snaps[0]); err != nil {
		f.Fatal(err)
	}
	if err := a.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(appendFrame(nil, marshalNodeRecord("x", 4096)))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(fdir, ManifestName), data, 0o644); err != nil {
			t.Skip()
		}
		a, err := Open(fdir)
		if err != nil {
			return
		}
		first := a.marshalManifest()
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		// Reopening the compacted archive must reproduce the same state.
		a2, err := Open(fdir)
		if err != nil {
			t.Fatalf("compacted manifest does not re-open: %v", err)
		}
		defer a2.Close()
		if second := a2.marshalManifest(); !bytes.Equal(first, second) {
			t.Fatal("manifest replay is not a fixpoint")
		}
	})
}

// FuzzSnapshotPayload feeds arbitrary bytes to the snapshot-increment
// decoder. It must error or decode, never panic; and whatever decodes must
// re-encode to a payload that decodes to the same value (no divergence
// between what was verified and what replay consumes).
func FuzzSnapshotPayload(f *testing.F) {
	m := vm.NewMachine(4*vm.PageSize, nil)
	st := snapshot.NewStore(len(m.Mem))
	s0, err := st.Take(m, []byte("dev"), []byte("auth"))
	if err != nil {
		f.Fatal(err)
	}
	if err := m.Store32(vm.PageSize, 7); err != nil {
		f.Fatal(err)
	}
	s1, err := st.Take(m, nil, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(marshalSnapshotPayload(s0))
	f.Add(marshalSnapshotPayload(s1))
	f.Add([]byte{SnapshotPayloadVersion})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := parseSnapshotPayload(data)
		if err != nil {
			return
		}
		again, err := parseSnapshotPayload(marshalSnapshotPayload(s))
		if err != nil {
			t.Fatalf("re-encoded payload does not decode: %v", err)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatal("decode ∘ encode diverges from the first decode")
		}
	})
}
