package archive

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
	"repro/internal/vm"
	"repro/internal/wire"
)

// testRecording is one synthetic node recording: a chained log with two
// snapshot entries (so it archives as two closed epochs plus an unclosed
// tail) and the matching two-increment snapshot store.
type testRecording struct {
	node    string
	entries []tevlog.Entry
	store   *snapshot.Store
}

func makeRecording(t *testing.T) *testRecording {
	t.Helper()
	m := vm.NewMachine(8*vm.PageSize, nil)
	st := snapshot.NewStore(len(m.Mem))
	l := tevlog.New(sig.NullSigner{Node: "n1"})

	snapEntry := func(icount uint64) {
		t.Helper()
		if err := m.Store32(uint32(icount%8)*uint32(vm.PageSize), uint32(icount)); err != nil {
			t.Fatal(err)
		}
		s, err := st.Take(m, []byte("dev"), []byte("authdev"))
		if err != nil {
			t.Fatal(err)
		}
		ev := wire.EventContent{
			Kind: wire.EventSnapshot, SnapIdx: uint32(s.Index), Root: s.Root,
			Landmark: vm.Landmark{ICount: icount},
		}
		l.Append(tevlog.TypeSnapshot, ev.Marshal())
	}

	for i := 0; i < 5; i++ {
		l.Append(tevlog.TypeNondet, []byte{byte(i)})
	}
	snapEntry(100)
	for i := 0; i < 4; i++ {
		l.Append(tevlog.TypeSend, []byte("payload"))
	}
	snapEntry(200)
	l.Append(tevlog.TypeAck, []byte("tail-1"))
	l.Append(tevlog.TypeAck, []byte("tail-2"))

	return &testRecording{node: "n1", entries: l.All(), store: st}
}

func writeArchive(t *testing.T, rec *testRecording) (string, *Archive) {
	t.Helper()
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sf := rec.store.File()
	if err := a.WriteRecording(rec.node, rec.entries, &sf); err != nil {
		t.Fatal(err)
	}
	return dir, a
}

func sameEntries(a, b []tevlog.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || a[i].Type != b[i].Type ||
			a[i].Hash != b[i].Hash || string(a[i].Content) != string(b[i].Content) {
			return false
		}
	}
	return true
}

func TestArchiveRoundTrip(t *testing.T) {
	rec := makeRecording(t)
	dir, a := writeArchive(t, rec)

	if n, _ := a.Epochs(rec.node); n != 3 {
		t.Fatalf("epochs = %d, want 3 (2 closed + unclosed tail)", n)
	}
	if n, _ := a.Snapshots(rec.node); n != 2 {
		t.Fatalf("snapshots = %d, want 2", n)
	}
	got, err := a.ReadLog(rec.node)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEntries(got, rec.entries) {
		t.Fatal("ReadLog differs from the recorded entries")
	}
	bounds, err := a.Boundaries(rec.node)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 2 {
		t.Fatalf("boundaries = %d, want 2", len(bounds))
	}
	if bounds[0].Seq != 6 || bounds[0].SnapIdx != 0 || bounds[1].Seq != 11 || bounds[1].SnapIdx != 1 {
		t.Fatalf("boundary seqs/snaps = %+v", bounds)
	}
	if bounds[1].EntryHash != rec.entries[10].Hash {
		t.Fatal("boundary entry hash does not match the live chain")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the manifest round-trips and reads stay identical.
	a2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	got2, err := a2.ReadLog(rec.node)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEntries(got2, rec.entries) {
		t.Fatal("ReadLog after reopen differs from the recorded entries")
	}
	info, err := a2.EpochInfo(rec.node, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Closed || info.Boot || info.FirstSeq != 7 || info.Entries != 5 || info.EndSnap != 1 {
		t.Fatalf("epoch 1 info = %+v", info)
	}
}

func TestArchiveEntrySourceStreams(t *testing.T) {
	rec := makeRecording(t)
	_, a := writeArchive(t, rec)
	defer a.Close()
	src, err := a.EntrySource(rec.node)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for i := range rec.entries {
		e, err := src.Next()
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if e.Seq != rec.entries[i].Seq || e.Type != rec.entries[i].Type {
			t.Fatalf("entry %d = seq %d type %v, want seq %d type %v",
				i, e.Seq, e.Type, rec.entries[i].Seq, rec.entries[i].Type)
		}
	}
	if _, err := src.Next(); err == nil {
		t.Fatal("source yields entries past the end")
	}
}

func TestArchiveWindowMatchesLogSlice(t *testing.T) {
	rec := makeRecording(t)
	_, a := writeArchive(t, rec)
	defer a.Close()
	// Window after boundary 0 of length 1 = epoch 1 = entries 7..11.
	win, err := a.ReadWindow(rec.node, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEntries(win, rec.entries[6:11]) {
		t.Fatal("window differs from the corresponding log slice")
	}
}

func TestArchiveSnapshotPayloadRoundTrip(t *testing.T) {
	rec := makeRecording(t)
	sf := rec.store.File()
	for _, s := range sf.Snaps {
		payload := marshalSnapshotPayload(s)
		back, err := parseSnapshotPayload(payload)
		if err != nil {
			t.Fatalf("snapshot %d: %v", s.Index, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("snapshot %d does not round-trip", s.Index)
		}
	}
}

func TestArchiveMaterializeMatchesStore(t *testing.T) {
	rec := makeRecording(t)
	_, a := writeArchive(t, rec)
	defer a.Close()
	src, err := a.IncrementSource(rec.node)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < rec.store.Count(); k++ {
		want, err := rec.store.Materialize(k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := snapshot.MaterializeFrom(src, k)
		if err != nil {
			t.Fatalf("snapshot %d: %v", k, err)
		}
		if got.Root != want.Root || string(got.Mem) != string(want.Mem) {
			t.Fatalf("materialized state %d differs from the in-memory store", k)
		}
	}
	// Deltas build identically too.
	for k := 1; k < rec.store.Count(); k++ {
		want, err := rec.store.Delta(k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := snapshot.DeltaFrom(src, k)
		if err != nil {
			t.Fatal(err)
		}
		if got.ToRoot != want.ToRoot || got.FromRoot != want.FromRoot || len(got.Pages) != len(want.Pages) {
			t.Fatalf("delta %d differs from the in-memory store", k)
		}
	}
}

// TestArchiveTornManifestTail pins the crash contract on the manifest: a
// torn final record is dropped, everything before it survives, and appends
// resume cleanly after the compacting reopen.
func TestArchiveTornManifestTail(t *testing.T) {
	rec := makeRecording(t)
	dir, a := writeArchive(t, rec)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Chop mid-frame: the final record (the unclosed tail epoch) tears.
	path := filepath.Join(dir, ManifestName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	a2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := a2.Epochs(rec.node); n != 2 {
		t.Fatalf("epochs after torn tail = %d, want 2", n)
	}
	got, err := a2.ReadLog(rec.node)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEntries(got, rec.entries[:11]) {
		t.Fatal("surviving prefix differs from the first two epochs")
	}
	// The writer can re-archive the lost tail and the full log reads back.
	if err := a2.AppendEpoch(rec.node, EpochMeta{StartSnap: 1, StartSeq: 11}, rec.entries[11:]); err != nil {
		t.Fatal(err)
	}
	if err := a2.Close(); err != nil {
		t.Fatal(err)
	}
	a3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a3.Close()
	got, err = a3.ReadLog(rec.node)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEntries(got, rec.entries) {
		t.Fatal("log after recovered append differs from the original")
	}
}

// TestArchiveTornTilePayload pins the other crash shape: the manifest
// record made it to disk but its payload did not. The record (and
// everything after it) is dropped and the tile truncated back to the last
// indexed byte.
func TestArchiveTornTilePayload(t *testing.T) {
	rec := makeRecording(t)
	dir, a := writeArchive(t, rec)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	tile := filepath.Join(dir, rec.node+TileSuffix)
	fi, err := os.Stat(tile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(tile, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	a2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if n, _ := a2.Epochs(rec.node); n != 2 {
		t.Fatalf("epochs after torn payload = %d, want 2", n)
	}
	got, err := a2.ReadLog(rec.node)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEntries(got, rec.entries[:11]) {
		t.Fatal("surviving prefix differs from the first two epochs")
	}
	fi, err = os.Stat(tile)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != fileTail(t, a2, rec.node) {
		t.Fatalf("tile is %d bytes, want truncation to the last indexed byte %d",
			fi.Size(), fileTail(t, a2, rec.node))
	}
	src, err := a2.IncrementSource(rec.node)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < src.Count(); k++ {
		if _, err := src.Increment(k); err != nil {
			t.Fatalf("snapshot %d unreadable after truncation recovery: %v", k, err)
		}
	}
}

// TestArchiveCorruptSegmentDetected flips single payload bytes: every read
// path must surface a precise error, never decoded garbage.
func TestArchiveCorruptSegmentDetected(t *testing.T) {
	rec := makeRecording(t)
	dir, a := writeArchive(t, rec)
	epoch1, err := a.EpochInfo(rec.node, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	tile := filepath.Join(dir, rec.node+TileSuffix)
	raw, err := os.ReadFile(tile)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xFF // inside snapshot 0's payload (snapshots precede epochs)
	if err := os.WriteFile(tile, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	a2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	src, err := a2.IncrementSource(rec.node)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Increment(0); err == nil {
		t.Fatal("corrupt snapshot increment read back without error")
	}
	if _, err := snapshot.MaterializeFrom(src, 2); err == nil {
		t.Fatal("materialization over a corrupt increment succeeded")
	}
	a2.Close()

	raw[0] ^= 0xFF // restore
	// Epoch 2's payload ends the tile; epoch 1's sits just before it.
	epoch2, err := a2.EpochInfo(rec.node, 2)
	if err != nil {
		t.Fatal(err)
	}
	raw[int64(len(raw))-epoch2.Bytes-epoch1.Bytes] ^= 0xFF
	if err := os.WriteFile(tile, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	a3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a3.Close()
	if _, err := a3.ReadLog(rec.node); err == nil {
		t.Fatal("corrupt epoch segment read back without error")
	}
	src2, err := a3.EntrySource(rec.node)
	if err != nil {
		t.Fatal(err)
	}
	defer src2.Close()
	streamErr := error(nil)
	for {
		if _, err := src2.Next(); err != nil {
			streamErr = err
			break
		}
	}
	if streamErr == nil {
		t.Fatal("streaming a corrupt archive reached EOF without error")
	}
}

func fileTail(t *testing.T, a *Archive, node string) int64 {
	t.Helper()
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nodes[node].tail
}

// TestArchiveManifestCorruptionEndsPrefix flips a byte inside an early
// manifest record: the crc catches it and the prefix ends there even
// though later frames are intact.
func TestArchiveManifestCorruptionEndsPrefix(t *testing.T) {
	rec := makeRecording(t)
	dir, a := writeArchive(t, rec)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ManifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// First frame is the node record; corrupt the second frame's body.
	first, _, ok := nextFrame(raw)
	if !ok {
		t.Fatal("manifest does not start with a valid frame")
	}
	raw[FrameHeaderSize+len(first)+FrameHeaderSize] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	a2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if n, _ := a2.Epochs(rec.node); n != 0 {
		t.Fatalf("epochs past corruption = %d, want 0", n)
	}
	if n, _ := a2.Snapshots(rec.node); n != 0 {
		t.Fatalf("snapshots past corruption = %d, want 0", n)
	}
}

func TestArchiveInclusionProofs(t *testing.T) {
	rec := makeRecording(t)
	_, a := writeArchive(t, rec)
	defer a.Close()
	root, err := a.LogRoot(rec.node)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := a.Epochs(rec.node)
	for k := 0; k < n; k++ {
		proof, proot, err := a.ProveEpoch(rec.node, k)
		if err != nil {
			t.Fatal(err)
		}
		if proot != root {
			t.Fatalf("epoch %d proof root differs from LogRoot", k)
		}
		info, err := a.EpochInfo(rec.node, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyInclusion(root, proof, info.Hash); err != nil {
			t.Fatalf("epoch %d inclusion proof rejected: %v", k, err)
		}
		var wrong [32]byte
		copy(wrong[:], info.Hash[:])
		wrong[0] ^= 1
		if err := VerifyInclusion(root, proof, wrong); err == nil {
			t.Fatalf("epoch %d inclusion proof accepts a tampered segment hash", k)
		}
	}
	if _, _, err := a.ProveEpoch(rec.node, n); err == nil {
		t.Fatal("proof for out-of-range epoch succeeded")
	}
}

func TestArchiveAppendDiscipline(t *testing.T) {
	rec := makeRecording(t)
	_, a := writeArchive(t, rec)
	defer a.Close()
	// Epoch 2 is unclosed: nothing may append after it.
	if err := a.AppendEpoch(rec.node, EpochMeta{}, rec.entries[:1]); err == nil {
		t.Fatal("append after an unclosed epoch succeeded")
	}
	if err := a.AppendEpoch(rec.node, EpochMeta{}, nil); err == nil {
		t.Fatal("empty epoch accepted")
	}
	sf := rec.store.File()
	if err := a.AppendSnapshot(rec.node, sf.Snaps[0]); err == nil {
		t.Fatal("out-of-order snapshot accepted")
	}
	if err := a.BeginNode(rec.node, rec.store.MemSize()); err != nil {
		t.Fatalf("idempotent BeginNode rejected: %v", err)
	}
	if err := a.BeginNode(rec.node, rec.store.MemSize()+1); err == nil {
		t.Fatal("BeginNode with a different memSize accepted")
	}
	if _, err := a.ReadLog("ghost"); err == nil {
		t.Fatal("unknown node read succeeded")
	}
}

// minimalSnapshotPayload builds a hand-rolled snapshot payload up to (and
// excluding) the proof index count, for hostile-count tests.
func minimalSnapshotPayload() []byte {
	b := []byte{SnapshotPayloadVersion}
	for i := 0; i < 6; i++ {
		b = binary.AppendUvarint(b, 0) // index, landmark×3, icount, incrementBytes
	}
	for i := 0; i < 3; i++ {
		b = binary.AppendUvarint(b, 0) // empty machine/device/authDevice blobs
	}
	b = binary.AppendUvarint(b, 0) // nPages
	b = binary.AppendUvarint(b, 0) // proof.leaves
	return b
}

// TestArchiveSnapshotPayloadHostileCounts pins the overflow guards: a
// declared count whose ×32 wraps the uint64 bound must error at decode,
// never panic allocating (regression: nSib=1<<59 made nSib*32 wrap to 0).
func TestArchiveSnapshotPayloadHostileCounts(t *testing.T) {
	hostile := minimalSnapshotPayload()
	hostile = binary.AppendUvarint(hostile, 0)     // nIdx
	hostile = binary.AppendUvarint(hostile, 1<<59) // nSib: ×32 wraps to 0
	if _, err := parseSnapshotPayload(hostile); err == nil {
		t.Fatal("huge sibling count decoded without error")
	}

	hostile = minimalSnapshotPayload()
	hostile = binary.AppendUvarint(hostile, 1<<59) // nIdx
	if _, err := parseSnapshotPayload(hostile); err == nil {
		t.Fatal("huge index count decoded without error")
	}
}

// TestArchiveSnapshotPayloadOversizedPage pins the per-page length bound:
// a page longer than vm.PageSize must be rejected at decode, not bleed
// into its neighbor at materialization.
func TestArchiveSnapshotPayloadOversizedPage(t *testing.T) {
	b := []byte{SnapshotPayloadVersion}
	for i := 0; i < 6; i++ {
		b = binary.AppendUvarint(b, 0)
	}
	for i := 0; i < 3; i++ {
		b = binary.AppendUvarint(b, 0)
	}
	b = binary.AppendUvarint(b, 1) // nPages
	b = binary.AppendUvarint(b, 0) // page index
	b = binary.AppendUvarint(b, uint64(vm.PageSize+1))
	b = append(b, make([]byte, vm.PageSize+1)...)
	b = binary.AppendUvarint(b, 0) // proof.leaves
	b = binary.AppendUvarint(b, 0) // nIdx
	b = binary.AppendUvarint(b, 0) // nSib
	b = append(b, make([]byte, 64)...) // root + memRoot
	if _, err := parseSnapshotPayload(b); err == nil {
		t.Fatal("oversized page decoded without error")
	}
}

// TestArchiveManifestHugeExtentRejected pins the overflow-safe extent
// check in replay: a record whose off+len wraps int64 must end the valid
// prefix, not corrupt the replayed tail (regression: the sum-based bound
// accepted it and poisoned every later open).
func TestArchiveManifestHugeExtentRejected(t *testing.T) {
	rec := makeRecording(t)
	dir, a := writeArchive(t, rec)
	tail := fileTail(t, a, rec.node)
	nSnaps, _ := a.Snapshots(rec.node)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// off = the replayed tail (so the contiguity check passes) and
	// off+len ≥ 2^63, wrapping negative under a sum-based bound.
	hostile := snapRec{Off: tail, Len: int64(uint64(1)<<63 - uint64(tail))}
	frame := appendFrame(nil, marshalSnapRecord(rec.node, nSnaps, &hostile))
	path := filepath.Join(dir, ManifestName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	a2, err := Open(dir)
	if err != nil {
		t.Fatalf("archive with a hostile extent record does not open: %v", err)
	}
	defer a2.Close()
	if n, _ := a2.Snapshots(rec.node); n != nSnaps {
		t.Fatalf("snapshots = %d, want the hostile record dropped (%d)", n, nSnaps)
	}
	if got, err := a2.ReadLog(rec.node); err != nil || !sameEntries(got, rec.entries) {
		t.Fatalf("log unreadable after dropping the hostile record: %v", err)
	}
}

// TestArchiveWriteFailurePoisonsAppends pins the sticky-failure contract:
// after a failed tile write the archive refuses further appends (the
// O_APPEND offset may no longer match the indexed tail) while reads of
// already-indexed segments keep working.
func TestArchiveWriteFailurePoisonsAppends(t *testing.T) {
	rec := makeRecording(t)
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.BeginNode(rec.node, rec.store.MemSize()); err != nil {
		t.Fatal(err)
	}
	sf := rec.store.File()
	if err := a.AppendSnapshot(rec.node, sf.Snaps[0]); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}

	// Sabotage the tile writer so the next append's write fails.
	a.mu.Lock()
	a.writers[rec.node].Close()
	a.mu.Unlock()
	if err := a.AppendSnapshot(rec.node, sf.Snaps[1]); err == nil {
		t.Fatal("append over a closed tile handle succeeded")
	}
	err = a.AppendSnapshot(rec.node, sf.Snaps[1])
	if err == nil || !strings.Contains(err.Error(), "unusable") {
		t.Fatalf("append after a write failure = %v, want sticky unusable error", err)
	}
	if err := a.BeginNode("other", 0); err == nil || !strings.Contains(err.Error(), "unusable") {
		t.Fatalf("BeginNode after a write failure = %v, want sticky unusable error", err)
	}
	// Already-indexed segments stay readable.
	src, err := a.IncrementSource(rec.node)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Increment(0); err != nil {
		t.Fatalf("indexed snapshot unreadable after poisoning: %v", err)
	}
}

// TestArchiveFormatConstants pins the values documented in
// docs/ARCHIVE_FORMAT.md; changing either side must change both.
func TestArchiveFormatConstants(t *testing.T) {
	if ManifestName != "MANIFEST" || TileSuffix != ".tile" {
		t.Fatal("archive file naming drifted from docs/ARCHIVE_FORMAT.md")
	}
	if FrameHeaderSize != 8 || MaxRecordSize != 1<<20 {
		t.Fatal("manifest framing drifted from docs/ARCHIVE_FORMAT.md")
	}
	if SnapshotPayloadVersion != 1 {
		t.Fatal("snapshot payload version drifted from docs/ARCHIVE_FORMAT.md")
	}
	if RecordNode != 1 || RecordEpoch != 2 || RecordSnapshot != 3 {
		t.Fatal("manifest record kinds drifted from docs/ARCHIVE_FORMAT.md")
	}
}
