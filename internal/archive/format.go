// On-disk encoding of the archive: the crc-framed manifest records and
// the snapshot-increment payload codec. Everything here is documented in
// docs/ARCHIVE_FORMAT.md — the constants below are referenced by name
// there and pinned by round-trip tests, so a change to either side must
// change both.
package archive

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/merkle"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
	"repro/internal/vm"
)

const (
	// ManifestName is the append-only manifest file inside an archive
	// directory.
	ManifestName = "MANIFEST"
	// TileSuffix is the per-node payload file extension: segment payloads
	// for node N are appended back-to-back to "N" + TileSuffix.
	TileSuffix = ".tile"

	// FrameHeaderSize is the fixed prefix of every manifest record:
	// uint32 BE body length followed by uint32 BE CRC-32 (IEEE) of the
	// body — the same framing as the coordinator's epoch journal.
	FrameHeaderSize = 8
	// MaxRecordSize bounds a manifest record body; a larger length field
	// is treated as a torn tail, never allocated.
	MaxRecordSize = 1 << 20

	// SnapshotPayloadVersion is the leading version byte of every
	// snapshot-increment payload.
	SnapshotPayloadVersion = 1
)

// Manifest record kinds. A record's body starts with one of these bytes.
const (
	// RecordNode declares a node before any of its segments: name and
	// memory size (for the snapshot materializer).
	RecordNode = byte(1)
	// RecordEpoch indexes one epoch's log-entry segment in the node's
	// tile file.
	RecordEpoch = byte(2)
	// RecordSnapshot indexes one snapshot-increment segment in the node's
	// tile file.
	RecordSnapshot = byte(3)
)

// errTorn marks a structurally invalid manifest record; replay treats it
// as the end of the valid prefix (the torn tail of a crash) rather than an
// archive error.
var errTorn = errors.New("archive: torn record")

// epochRec is the decoded manifest state of one epoch segment.
type epochRec struct {
	Boot      bool
	Closed    bool // epoch ends at a snapshot entry
	StartSnap uint32
	StartSeq  uint64
	StartRoot [32]byte
	// End* describe the closing snapshot entry (valid when Closed).
	EndSnap   uint32
	EndRoot   [32]byte
	EndICount uint64
	// EndHash is the chain hash of the epoch's last entry.
	EndHash  tevlog.Hash
	Entries  int
	FirstSeq uint64
	Off      int64
	Len      int64
	Hash     [32]byte // SHA-256 of the segment payload
}

// snapRec is the decoded manifest state of one snapshot segment.
type snapRec struct {
	Root    [32]byte
	MemRoot merkle.Hash
	ICount  uint64
	Off     int64
	Len     int64
	Hash    [32]byte
}

// recReader cursors over a record body with sticky bounds checking, the
// same defensive shape as the wire package's reader: a truncated or
// hostile body flips err and every subsequent read returns zero values.
type recReader struct {
	b   []byte
	err bool
}

func (r *recReader) fail() { r.err = true }

func (r *recReader) byte() byte {
	if r.err || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *recReader) uvarint() uint64 {
	if r.err {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *recReader) bytes(n int) []byte {
	if r.err || n < 0 || n > len(r.b) {
		r.fail()
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *recReader) hash32() (out [32]byte) {
	copy(out[:], r.bytes(32))
	return out
}

func (r *recReader) str() string {
	n := r.uvarint()
	if n > 255 {
		r.fail()
		return ""
	}
	return string(r.bytes(int(n)))
}

func (r *recReader) done() bool { return !r.err && len(r.b) == 0 }

// appendStr appends a uvarint-length-prefixed string.
func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendFrame wraps body in the manifest frame: length, CRC-32, body.
func appendFrame(dst, body []byte) []byte {
	var hdr [FrameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// nextFrame decodes one frame from the front of b, returning the body and
// the remainder. ok is false on a torn or corrupt frame — a short header,
// an oversized length, a short body, or a checksum mismatch — all of which
// end the manifest's valid prefix.
func nextFrame(b []byte) (body, rest []byte, ok bool) {
	if len(b) < FrameHeaderSize {
		return nil, nil, false
	}
	n := binary.BigEndian.Uint32(b[0:4])
	sum := binary.BigEndian.Uint32(b[4:8])
	if n > MaxRecordSize || int(n) > len(b)-FrameHeaderSize {
		return nil, nil, false
	}
	body = b[FrameHeaderSize : FrameHeaderSize+int(n)]
	if crc32.ChecksumIEEE(body) != sum {
		return nil, nil, false
	}
	return body, b[FrameHeaderSize+int(n):], true
}

func marshalNodeRecord(node string, memSize int) []byte {
	b := []byte{RecordNode}
	b = appendStr(b, node)
	b = binary.AppendUvarint(b, uint64(memSize))
	return b
}

func marshalEpochRecord(node string, idx int, e *epochRec) []byte {
	b := []byte{RecordEpoch}
	b = appendStr(b, node)
	b = binary.AppendUvarint(b, uint64(idx))
	var flags byte
	if e.Boot {
		flags |= 1
	}
	if e.Closed {
		flags |= 2
	}
	b = append(b, flags)
	b = binary.AppendUvarint(b, uint64(e.StartSnap))
	b = binary.AppendUvarint(b, e.StartSeq)
	b = append(b, e.StartRoot[:]...)
	b = binary.AppendUvarint(b, uint64(e.EndSnap))
	b = append(b, e.EndRoot[:]...)
	b = binary.AppendUvarint(b, e.EndICount)
	b = append(b, e.EndHash[:]...)
	b = binary.AppendUvarint(b, uint64(e.Entries))
	b = binary.AppendUvarint(b, e.FirstSeq)
	b = binary.AppendUvarint(b, uint64(e.Off))
	b = binary.AppendUvarint(b, uint64(e.Len))
	b = append(b, e.Hash[:]...)
	return b
}

func marshalSnapRecord(node string, idx int, s *snapRec) []byte {
	b := []byte{RecordSnapshot}
	b = appendStr(b, node)
	b = binary.AppendUvarint(b, uint64(idx))
	b = append(b, s.Root[:]...)
	b = append(b, s.MemRoot[:]...)
	b = binary.AppendUvarint(b, s.ICount)
	b = binary.AppendUvarint(b, uint64(s.Off))
	b = binary.AppendUvarint(b, uint64(s.Len))
	b = append(b, s.Hash[:]...)
	return b
}

// parseEpochRecord decodes an epoch record body (after the kind byte).
func parseEpochRecord(r *recReader) (node string, idx int, e epochRec, err error) {
	node = r.str()
	idx = int(r.uvarint())
	flags := r.byte()
	e.Boot = flags&1 != 0
	e.Closed = flags&2 != 0
	e.StartSnap = uint32(r.uvarint())
	e.StartSeq = r.uvarint()
	e.StartRoot = r.hash32()
	e.EndSnap = uint32(r.uvarint())
	e.EndRoot = r.hash32()
	e.EndICount = r.uvarint()
	e.EndHash = tevlog.Hash(r.hash32())
	e.Entries = int(r.uvarint())
	e.FirstSeq = r.uvarint()
	e.Off = int64(r.uvarint())
	e.Len = int64(r.uvarint())
	e.Hash = r.hash32()
	if !r.done() || idx < 0 || e.Entries <= 0 || e.Off < 0 || e.Len <= 0 || flags&^byte(3) != 0 {
		return "", 0, epochRec{}, errTorn
	}
	return node, idx, e, nil
}

// parseSnapRecord decodes a snapshot record body (after the kind byte).
func parseSnapRecord(r *recReader) (node string, idx int, s snapRec, err error) {
	node = r.str()
	idx = int(r.uvarint())
	s.Root = r.hash32()
	s.MemRoot = merkle.Hash(r.hash32())
	s.ICount = r.uvarint()
	s.Off = int64(r.uvarint())
	s.Len = int64(r.uvarint())
	s.Hash = r.hash32()
	if !r.done() || idx < 0 || s.Off < 0 || s.Len <= 0 {
		return "", 0, snapRec{}, errTorn
	}
	return node, idx, s, nil
}

// maxSnapshotPages bounds the page count a snapshot payload may declare;
// a hostile count larger than this errors before any allocation.
const maxSnapshotPages = 1 << 22

// marshalSnapshotPayload encodes a snapshot increment as a self-contained
// segment payload (layout in docs/ARCHIVE_FORMAT.md). Pages are written in
// ascending index order so the encoding is deterministic.
func marshalSnapshotPayload(s *snapshot.Snapshot) []byte {
	b := []byte{SnapshotPayloadVersion}
	b = binary.AppendUvarint(b, uint64(s.Index))
	b = binary.AppendUvarint(b, s.Landmark.ICount)
	b = binary.AppendUvarint(b, s.Landmark.Branches)
	b = binary.AppendUvarint(b, uint64(s.Landmark.PC))
	b = binary.AppendUvarint(b, s.ICount)
	b = binary.AppendUvarint(b, uint64(s.IncrementBytes))
	for _, blob := range [][]byte{s.Machine, s.Device, s.AuthDevice} {
		b = binary.AppendUvarint(b, uint64(len(blob)))
		b = append(b, blob...)
	}
	pages := make([]int, 0, len(s.MemPages))
	for p := range s.MemPages {
		pages = append(pages, p)
	}
	sort.Ints(pages)
	b = binary.AppendUvarint(b, uint64(len(pages)))
	for _, p := range pages {
		b = binary.AppendUvarint(b, uint64(p))
		b = binary.AppendUvarint(b, uint64(len(s.MemPages[p])))
		b = append(b, s.MemPages[p]...)
	}
	b = binary.AppendUvarint(b, uint64(s.Proof.Leaves))
	b = binary.AppendUvarint(b, uint64(len(s.Proof.Indices)))
	for _, i := range s.Proof.Indices {
		b = binary.AppendUvarint(b, uint64(i))
	}
	for _, h := range s.Proof.Old {
		b = append(b, h[:]...)
	}
	b = binary.AppendUvarint(b, uint64(len(s.Proof.Siblings)))
	for _, h := range s.Proof.Siblings {
		b = append(b, h[:]...)
	}
	b = append(b, s.Root[:]...)
	b = append(b, s.MemRoot[:]...)
	return b
}

// parseSnapshotPayload decodes a snapshot-increment payload. Arbitrary
// bytes must error, never panic: every count is bounds-checked against the
// remaining payload before allocation, and trailing bytes are rejected.
func parseSnapshotPayload(b []byte) (*snapshot.Snapshot, error) {
	r := &recReader{b: b}
	if v := r.byte(); v != SnapshotPayloadVersion {
		return nil, fmt.Errorf("archive: snapshot payload version %d (want %d)", v, SnapshotPayloadVersion)
	}
	s := &snapshot.Snapshot{}
	s.Index = int(r.uvarint())
	s.Landmark = vm.Landmark{
		ICount:   r.uvarint(),
		Branches: r.uvarint(),
		PC:       uint32(r.uvarint()),
	}
	s.ICount = r.uvarint()
	s.IncrementBytes = int(r.uvarint())
	for _, dst := range []*[]byte{&s.Machine, &s.Device, &s.AuthDevice} {
		n := r.uvarint()
		if n > uint64(len(r.b)) {
			return nil, fmt.Errorf("archive: snapshot payload truncated")
		}
		*dst = append([]byte(nil), r.bytes(int(n))...)
	}
	nPages := r.uvarint()
	if nPages > maxSnapshotPages {
		return nil, fmt.Errorf("archive: snapshot payload declares %d pages", nPages)
	}
	s.MemPages = make(map[int][]byte, nPages)
	lastPage := -1
	for i := uint64(0); i < nPages && !r.err; i++ {
		p := int(r.uvarint())
		n := r.uvarint()
		if p <= lastPage || n > uint64(vm.PageSize) || n > uint64(len(r.b)) {
			return nil, fmt.Errorf("archive: snapshot payload pages malformed")
		}
		lastPage = p
		s.MemPages[p] = append([]byte(nil), r.bytes(int(n))...)
	}
	s.Proof.Leaves = int(r.uvarint())
	nIdx := r.uvarint()
	if nIdx > uint64(len(r.b)) {
		return nil, fmt.Errorf("archive: snapshot payload truncated")
	}
	s.Proof.Indices = make([]int, 0, nIdx)
	for i := uint64(0); i < nIdx && !r.err; i++ {
		s.Proof.Indices = append(s.Proof.Indices, int(r.uvarint()))
	}
	if nIdx > uint64(len(r.b))/32 {
		return nil, fmt.Errorf("archive: snapshot payload truncated")
	}
	s.Proof.Old = make([]merkle.Hash, 0, nIdx)
	for i := uint64(0); i < nIdx && !r.err; i++ {
		s.Proof.Old = append(s.Proof.Old, merkle.Hash(r.hash32()))
	}
	nSib := r.uvarint()
	// Divide rather than multiply: nSib is attacker-controlled and
	// nSib*32 can wrap past the bound, panicking at make below.
	if nSib > uint64(len(r.b))/32 {
		return nil, fmt.Errorf("archive: snapshot payload truncated")
	}
	s.Proof.Siblings = make([]merkle.Hash, 0, nSib)
	for i := uint64(0); i < nSib && !r.err; i++ {
		s.Proof.Siblings = append(s.Proof.Siblings, merkle.Hash(r.hash32()))
	}
	s.Root = r.hash32()
	s.MemRoot = merkle.Hash(r.hash32())
	if !r.done() {
		return nil, fmt.Errorf("archive: snapshot payload malformed")
	}
	if s.Proof.Leaves == 0 {
		// Canonicalize the zero proof so decode(encode(x)) == x for
		// proof-free snapshots regardless of empty-vs-nil slices.
		s.Proof = merkle.BatchProof{}
	}
	if len(s.MemPages) == 0 {
		s.MemPages = nil
	}
	if nIdx == 0 {
		s.Proof.Indices, s.Proof.Old = nil, nil
	}
	if nSib == 0 {
		s.Proof.Siblings = nil
	}
	return s, nil
}

// payloadHash is the digest the manifest binds every segment to.
func payloadHash(b []byte) [32]byte { return sha256.Sum256(b) }
