// The archive's verified read path. Every segment read re-hashes the
// payload against the manifest's SHA-256 before decoding; entry reads
// additionally re-derive the chain linkage against the archived per-epoch
// end hashes, and snapshot reads cross-check the decoded roots against
// the manifest record. Corruption therefore surfaces as a precise
// "archive:" error at the read site, which the audit integrations turn
// into the same fault class a tampered in-memory input produces.
package archive

import (
	"fmt"
	"io"
	"os"

	"repro/internal/logcomp"
	"repro/internal/merkle"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
)

// EpochInfo is the exported manifest state of one epoch segment.
type EpochInfo struct {
	// Index is the epoch's position in the node's log, starting at 0.
	Index int
	// Boot marks the first epoch (replayed from the reference image).
	Boot bool
	// Closed is true when the epoch ends at a snapshot entry.
	Closed bool
	// StartSnap/StartSeq/StartRoot identify the snapshot the epoch
	// replays from (zero for the boot epoch).
	StartSnap uint32
	StartSeq  uint64
	StartRoot [32]byte
	// EndSnap/EndRoot/EndICount describe the closing snapshot (valid when
	// Closed).
	EndSnap   uint32
	EndRoot   [32]byte
	EndICount uint64
	// EndHash is the archived chain hash of the epoch's last entry.
	EndHash tevlog.Hash
	// Entries and FirstSeq describe the entry run; Bytes its compressed
	// segment size; Hash the segment payload's SHA-256 — the leaf the
	// node's inclusion-proof Merkle log is built over.
	Entries  int
	FirstSeq uint64
	Bytes    int64
	Hash     [32]byte
}

func infoOf(k int, e *epochRec) EpochInfo {
	return EpochInfo{
		Index: k, Boot: e.Boot, Closed: e.Closed,
		StartSnap: e.StartSnap, StartSeq: e.StartSeq, StartRoot: e.StartRoot,
		EndSnap: e.EndSnap, EndRoot: e.EndRoot, EndICount: e.EndICount,
		EndHash: e.EndHash, Entries: e.Entries, FirstSeq: e.FirstSeq,
		Bytes: e.Len, Hash: e.Hash,
	}
}

// Epochs returns the number of archived epoch segments for node.
func (a *Archive) Epochs(node string) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ns, err := a.node(node)
	if err != nil {
		return 0, err
	}
	return len(ns.epochs), nil
}

// Snapshots returns the number of archived snapshot increments for node.
func (a *Archive) Snapshots(node string) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ns, err := a.node(node)
	if err != nil {
		return 0, err
	}
	return len(ns.snaps), nil
}

// EpochInfo returns epoch k's manifest state.
func (a *Archive) EpochInfo(node string, k int) (EpochInfo, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ns, err := a.node(node)
	if err != nil {
		return EpochInfo{}, err
	}
	if k < 0 || k >= len(ns.epochs) {
		return EpochInfo{}, fmt.Errorf("archive: %s epoch %d out of range [0,%d)", node, k, len(ns.epochs))
	}
	return infoOf(k, &ns.epochs[k]), nil
}

// readExtent reads and hash-verifies one segment payload.
func (a *Archive) readExtent(node string, off, length int64, want [32]byte, what string) ([]byte, error) {
	a.mu.Lock()
	r := a.readers[node]
	if r == nil {
		f, err := os.Open(a.tilePath(node))
		if err != nil {
			a.mu.Unlock()
			return nil, fmt.Errorf("archive: opening %s tile: %w", node, err)
		}
		a.readers[node] = f
		r = f
	}
	a.mu.Unlock()
	buf := make([]byte, length)
	if _, err := r.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("archive: reading %s %s: %w", node, what, err)
	}
	if payloadHash(buf) != want {
		return nil, fmt.Errorf("archive: %s %s payload hash mismatch (corrupt or tampered segment)", node, what)
	}
	return buf, nil
}

// epochPayload reads, verifies and returns epoch k's record and payload.
func (a *Archive) epochPayload(node string, k int) (epochRec, []byte, error) {
	a.mu.Lock()
	ns, err := a.node(node)
	if err != nil {
		a.mu.Unlock()
		return epochRec{}, nil, err
	}
	if k < 0 || k >= len(ns.epochs) {
		a.mu.Unlock()
		return epochRec{}, nil, fmt.Errorf("archive: %s epoch %d out of range [0,%d)", node, k, len(ns.epochs))
	}
	rec := ns.epochs[k]
	a.mu.Unlock()
	payload, err := a.readExtent(node, rec.Off, rec.Len, rec.Hash, fmt.Sprintf("epoch %d", k))
	if err != nil {
		return epochRec{}, nil, err
	}
	return rec, payload, nil
}

// ReadEpoch returns epoch k's entry run, verified against the manifest:
// the payload hash and the decoded entry count must match the archived
// record. Containers are sequence-relative (a decoded run always starts
// at seq 1), so sequence numbers are rebased onto the manifest's
// FirstSeq. Entries come back without chain hashes; ReadLog and
// spot-check windows re-derive and check them against the archived
// linkage.
func (a *Archive) ReadEpoch(node string, k int) ([]tevlog.Entry, error) {
	rec, payload, err := a.epochPayload(node, k)
	if err != nil {
		return nil, err
	}
	entries, err := logcomp.DecompressEntries(payload)
	if err != nil {
		return nil, fmt.Errorf("archive: %s epoch %d: %w", node, k, err)
	}
	if len(entries) != rec.Entries {
		return nil, fmt.Errorf("archive: %s epoch %d decodes to %d entries, manifest says %d",
			node, k, len(entries), rec.Entries)
	}
	rebase(entries, rec.FirstSeq)
	return entries, nil
}

// rebase shifts a sequence-relative decoded run (starting at seq 1) onto
// its archived absolute first sequence number, preserving deltas.
func rebase(entries []tevlog.Entry, firstSeq uint64) {
	off := firstSeq - entries[0].Seq
	if off == 0 {
		return
	}
	for i := range entries {
		entries[i].Seq += off
	}
}

// ReadLog reconstructs the node's complete entry slice from its epoch
// segments, re-deriving the hash chain from boot and verifying each
// epoch's final hash against the archived linkage. The returned entries
// carry chain hashes, ready for any materializing engine.
func (a *Archive) ReadLog(node string) ([]tevlog.Entry, error) {
	n, err := a.Epochs(node)
	if err != nil {
		return nil, err
	}
	var all []tevlog.Entry
	var prev tevlog.Hash
	for k := 0; k < n; k++ {
		rec, err := a.EpochInfo(node, k)
		if err != nil {
			return nil, err
		}
		entries, err := a.ReadEpoch(node, k)
		if err != nil {
			return nil, err
		}
		if err := tevlog.Rechain(prev, entries); err != nil {
			return nil, fmt.Errorf("archive: %s epoch %d: %w", node, k, err)
		}
		last := entries[len(entries)-1].Hash
		if last != rec.EndHash {
			return nil, fmt.Errorf("archive: %s epoch %d chain hash mismatch against archived linkage (corrupt or tampered segment)", node, k)
		}
		prev = last
		all = append(all, entries...)
	}
	return all, nil
}

// entrySource streams a node's entries epoch by epoch: at most one
// epoch's compressed payload is resident, and each payload is
// hash-verified before its first entry is yielded.
type entrySource struct {
	a      *Archive
	node   string
	epoch  int
	total  int // epochs at open
	cur    *logcomp.EntryReader
	curRec epochRec
	count  int    // entries yielded from cur
	rebase uint64 // FirstSeq - 1: containers are sequence-relative
}

// EntrySource returns a logcomp.EntrySource streaming the node's log
// straight from disk — the stream engine's archive-backed input. Reads
// are verified segment by segment; a corrupt segment surfaces as the
// source error, which the stream engine reports as a CheckLog fault
// exactly like a corrupt container.
func (a *Archive) EntrySource(node string) (logcomp.EntrySource, error) {
	n, err := a.Epochs(node)
	if err != nil {
		return nil, err
	}
	return &entrySource{a: a, node: node, total: n}, nil
}

// Next implements logcomp.EntrySource.
func (s *entrySource) Next() (tevlog.Entry, error) {
	for {
		if s.cur == nil {
			if s.epoch >= s.total {
				return tevlog.Entry{}, io.EOF
			}
			rec, payload, err := s.a.epochPayload(s.node, s.epoch)
			if err != nil {
				return tevlog.Entry{}, err
			}
			r, err := logcomp.NewEntryReader(payload)
			if err != nil {
				return tevlog.Entry{}, fmt.Errorf("archive: %s epoch %d: %w", s.node, s.epoch, err)
			}
			s.cur, s.curRec, s.count = r, rec, 0
			s.rebase = rec.FirstSeq - 1
		}
		e, err := s.cur.Next()
		if err == io.EOF {
			if s.count != s.curRec.Entries {
				return tevlog.Entry{}, fmt.Errorf("archive: %s epoch %d yields %d entries, manifest says %d",
					s.node, s.epoch, s.count, s.curRec.Entries)
			}
			s.cur.Close()
			s.cur = nil
			s.epoch++
			continue
		}
		if err != nil {
			return tevlog.Entry{}, fmt.Errorf("archive: %s epoch %d: %w", s.node, s.epoch, err)
		}
		e.Seq += s.rebase
		if s.count == 0 && e.Seq != s.curRec.FirstSeq {
			return tevlog.Entry{}, fmt.Errorf("archive: %s epoch %d starts at seq %d, manifest says %d",
				s.node, s.epoch, e.Seq, s.curRec.FirstSeq)
		}
		s.count++
		return e, nil
	}
}

// Close implements logcomp.EntrySource.
func (s *entrySource) Close() error {
	if s.cur != nil {
		s.cur.Close()
		s.cur = nil
	}
	s.epoch = s.total
	return nil
}

// Boundary is one snapshot point of an archived log, reconstructed from
// the manifest alone — no entry needs decoding to seek to it.
type Boundary struct {
	// EntryIndex is the snapshot entry's position in the full log.
	EntryIndex int
	// Seq is the snapshot entry's sequence number.
	Seq uint64
	// SnapIdx and Root identify the committed snapshot.
	SnapIdx uint32
	Root    [32]byte
	// EntryHash is the chain hash of the snapshot entry, the linkage a
	// chunk audit verifies its segment against.
	EntryHash tevlog.Hash
	// ICount is the instruction count at the snapshot's landmark.
	ICount uint64
}

// Boundaries returns the node's snapshot points in log order — one per
// closed epoch — enabling seeks to any snapshot point without reading a
// single entry.
func (a *Archive) Boundaries(node string) ([]Boundary, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ns, err := a.node(node)
	if err != nil {
		return nil, err
	}
	var out []Boundary
	idx := 0
	for i := range ns.epochs {
		e := &ns.epochs[i]
		idx += e.Entries
		if !e.Closed {
			break
		}
		out = append(out, Boundary{
			EntryIndex: idx - 1,
			Seq:        e.FirstSeq + uint64(e.Entries) - 1,
			SnapIdx:    e.EndSnap,
			Root:       e.EndRoot,
			EntryHash:  e.EndHash,
			ICount:     e.EndICount,
		})
	}
	return out, nil
}

// ReadWindow returns the chain-verified entry run between snapshot points
// from and from+k (the k epochs following boundary from): it streams
// exactly those segments from disk, re-derives the chain from the
// archived hash at the opening boundary, and checks the closing epoch's
// final hash against the archived linkage. This is the spot-check seek
// path: an auditor inspects k segments of a log it never materializes.
func (a *Archive) ReadWindow(node string, from, k int) ([]tevlog.Entry, error) {
	if k <= 0 {
		return nil, fmt.Errorf("archive: window length %d", k)
	}
	var out []tevlog.Entry
	prev, err := a.EpochInfo(node, from)
	if err != nil {
		return nil, err
	}
	chain := prev.EndHash
	for e := from + 1; e <= from+k; e++ {
		rec, err := a.EpochInfo(node, e)
		if err != nil {
			return nil, err
		}
		entries, err := a.ReadEpoch(node, e)
		if err != nil {
			return nil, err
		}
		if err := tevlog.Rechain(chain, entries); err != nil {
			return nil, fmt.Errorf("archive: %s epoch %d: %w", node, e, err)
		}
		chain = entries[len(entries)-1].Hash
		if chain != rec.EndHash {
			return nil, fmt.Errorf("archive: %s epoch %d chain hash mismatch against archived linkage (corrupt or tampered segment)", node, e)
		}
		out = append(out, entries...)
	}
	return out, nil
}

// incrementSource adapts a node's archived snapshot segments to
// snapshot.IncrementSource. Decoded increments are memoized — audit
// materializations revisit the same early increments once per epoch, and
// a re-read from disk would re-pay hashing and decode every time.
type incrementSource struct {
	a    *Archive
	node string
	n    int
	mem  int

	memo []*snapshot.Snapshot // index → decoded increment, nil until read
}

// IncrementSource returns the node's archived snapshot increments as a
// snapshot.IncrementSource: the archive-backed materializer. Every
// increment read is verified against the manifest (payload hash, index
// and committed roots) before it participates in a fold; a corrupt
// increment errors, which audits report as a CheckSnapshot fault exactly
// like a tampered snapshot store.
func (a *Archive) IncrementSource(node string) (snapshot.IncrementSource, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ns, err := a.node(node)
	if err != nil {
		return nil, err
	}
	return &incrementSource{
		a: a, node: node, n: len(ns.snaps), mem: ns.memSize,
		memo: make([]*snapshot.Snapshot, len(ns.snaps)),
	}, nil
}

// MemSize implements snapshot.IncrementSource.
func (s *incrementSource) MemSize() int { return s.mem }

// Count implements snapshot.IncrementSource.
func (s *incrementSource) Count() int { return s.n }

// Increment implements snapshot.IncrementSource.
func (s *incrementSource) Increment(k int) (*snapshot.Snapshot, error) {
	if k < 0 || k >= s.n {
		return nil, fmt.Errorf("archive: %s snapshot %d out of range [0,%d)", s.node, k, s.n)
	}
	s.a.mu.Lock()
	rec := s.a.nodes[s.node].snaps[k]
	memod := s.memo[k]
	s.a.mu.Unlock()
	if memod != nil {
		return memod, nil
	}
	payload, err := s.a.readExtent(s.node, rec.Off, rec.Len, rec.Hash, fmt.Sprintf("snapshot %d", k))
	if err != nil {
		return nil, err
	}
	snap, err := parseSnapshotPayload(payload)
	if err != nil {
		return nil, err
	}
	if snap.Index != k || snap.Root != rec.Root || snap.MemRoot != rec.MemRoot {
		return nil, fmt.Errorf("archive: %s snapshot %d payload disagrees with manifest (corrupt or tampered segment)", s.node, k)
	}
	s.a.mu.Lock()
	s.memo[k] = snap
	s.a.mu.Unlock()
	return snap, nil
}

// LogRoot returns the Merkle root over the node's epoch segment hashes —
// the commitment "this archived log consists of exactly these epoch
// runs". Leaf k is the SHA-256 of epoch k's segment payload.
func (a *Archive) LogRoot(node string) (merkle.Hash, error) {
	leaves, err := a.epochLeaves(node)
	if err != nil {
		return merkle.Hash{}, err
	}
	return merkle.RootOf(leaves), nil
}

// ProveEpoch returns the inclusion proof that epoch k's segment (by
// payload hash) is leaf k of the node's archived log, plus the log root
// the proof verifies against.
func (a *Archive) ProveEpoch(node string, k int) (merkle.Proof, merkle.Hash, error) {
	leaves, err := a.epochLeaves(node)
	if err != nil {
		return merkle.Proof{}, merkle.Hash{}, err
	}
	if k < 0 || k >= len(leaves) {
		return merkle.Proof{}, merkle.Hash{}, fmt.Errorf("archive: %s epoch %d out of range [0,%d)", node, k, len(leaves))
	}
	t := merkle.Seeded(len(leaves), func(i int) []byte { return leaves[i] }, 0)
	p, err := t.Prove(k)
	if err != nil {
		return merkle.Proof{}, merkle.Hash{}, err
	}
	return p, t.Root(), nil
}

// VerifyInclusion checks an epoch inclusion proof: that a segment with
// the given payload hash is the proof's leaf of the archived log
// committed to by root.
func VerifyInclusion(root merkle.Hash, proof merkle.Proof, segmentHash [32]byte) error {
	return merkle.VerifyProof(root, proof, segmentHash[:])
}

func (a *Archive) epochLeaves(node string) ([][]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ns, err := a.node(node)
	if err != nil {
		return nil, err
	}
	leaves := make([][]byte, len(ns.epochs))
	for i := range ns.epochs {
		leaves[i] = ns.epochs[i].Hash[:]
	}
	return leaves, nil
}
