package logcomp

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/tevlog"
)

// FuzzDecompressEntries drives arbitrary bytes through the container
// decoder. The decoder must never panic; whenever it accepts an input, the
// streaming reader must accept it with the identical entry sequence, and
// re-encoding must round-trip.
func FuzzDecompressEntries(f *testing.F) {
	// Seed corpus: valid containers (empty, small, structured), plus the
	// header-corruption shapes the decoder must reject precisely.
	f.Add([]byte{})
	f.Add([]byte("XXXX"))
	f.Add(append(magic[:], 0, 0, 0, 0))             // empty container
	f.Add(append(magic[:], 0xFF, 0xFF, 0xFF, 0xFF)) // huge count, no columns
	f.Add(magic[:3])                                // cut mid-magic
	rng := rand.New(rand.NewSource(42))
	small := CompressEntries(randomEntries(rng, 5))
	f.Add(small)
	f.Add(small[:len(small)/2]) // truncated column data
	f.Add(small[:9])            // truncated column header
	overCount := append([]byte(nil), small...)
	binary.BigEndian.PutUint32(overCount[4:8], 1000) // count exceeds columns
	f.Add(overCount)
	underCount := append([]byte(nil), small...)
	binary.BigEndian.PutUint32(underCount[4:8], 2) // columns exceed count
	f.Add(underCount)
	structured := make([]tevlog.Entry, 50)
	for i := range structured {
		structured[i] = tevlog.Entry{Seq: uint64(i + 1), Type: tevlog.TypeNondet, Content: []byte{1, byte(i), 0, 0}}
	}
	f.Add(CompressEntries(structured))

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecompressEntries(data)
		if err != nil {
			return
		}
		// Any accepted container must re-encode losslessly.
		back, err := DecompressEntries(CompressEntries(entries))
		if err != nil {
			t.Fatalf("re-encoding accepted container failed to decode: %v", err)
		}
		if len(back) != len(entries) {
			t.Fatalf("re-encode round trip: %d entries, want %d", len(back), len(entries))
		}
		for i := range entries {
			if entries[i].Seq != back[i].Seq || entries[i].Type != back[i].Type ||
				!bytes.Equal(entries[i].Content, back[i].Content) {
				t.Fatalf("entry %d changed across re-encode round trip", i)
			}
		}
	})
}
