package logcomp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tevlog"
)

func randomEntries(rng *rand.Rand, n int) []tevlog.Entry {
	entries := make([]tevlog.Entry, n)
	for i := range entries {
		content := make([]byte, rng.Intn(60))
		rng.Read(content)
		entries[i] = tevlog.Entry{
			Seq:     uint64(i + 1),
			Type:    tevlog.EntryType(rng.Intn(7) + 1),
			Content: content,
		}
	}
	return entries
}

func TestCompressRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	entries := randomEntries(rng, 200)
	comp := CompressEntries(entries)
	back, err := DecompressEntries(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(back), len(entries))
	}
	for i := range entries {
		if back[i].Seq != entries[i].Seq || back[i].Type != entries[i].Type ||
			!bytes.Equal(back[i].Content, entries[i].Content) {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestCompressEmpty(t *testing.T) {
	comp := CompressEntries(nil)
	back, err := DecompressEntries(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("got %d entries from empty log", len(back))
	}
}

// TestPropertyRoundTripLossless: the compressor is lossless for arbitrary
// entry streams — the "lossless, VMM-specific" requirement of §6.4.
func TestPropertyRoundTripLossless(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		entries := randomEntries(rng, int(nRaw%100)+1)
		back, err := DecompressEntries(CompressEntries(entries))
		if err != nil || len(back) != len(entries) {
			return false
		}
		for i := range entries {
			if back[i].Seq != entries[i].Seq || back[i].Type != entries[i].Type ||
				!bytes.Equal(back[i].Content, entries[i].Content) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStructuredLogsCompressWell(t *testing.T) {
	// A log shaped like real AVMM traffic: repeated types, consecutive
	// sequence numbers, near-monotonic contents.
	entries := make([]tevlog.Entry, 2000)
	clock := uint64(1000)
	for i := range entries {
		clock += 37
		entries[i] = tevlog.Entry{
			Seq:     uint64(i + 1),
			Type:    tevlog.TypeNondet,
			Content: []byte{1, byte(clock), byte(clock >> 8), byte(clock >> 16)},
		}
	}
	raw := tevlog.MarshalSegment(entries)
	comp := CompressEntries(entries)
	if len(comp) >= len(raw)/3 {
		t.Fatalf("structured log compressed to %d of %d bytes; want at least 3x", len(comp), len(raw))
	}
	flateOnly := Flate(raw)
	if len(comp) >= len(flateOnly) {
		t.Fatalf("columnar (%d) did not beat flate alone (%d)", len(comp), len(flateOnly))
	}
}

func TestFlateRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte("accountable virtual machines "), 100)
	comp := Flate(data)
	if len(comp) >= len(data) {
		t.Fatalf("flate did not compress: %d >= %d", len(comp), len(data))
	}
	back, err := Unflate(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("flate round trip failed")
	}
	if _, err := Unflate([]byte("not flate data")); err == nil {
		t.Fatal("garbage decompressed")
	}
}

func TestDecompressRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	comp := CompressEntries(randomEntries(rng, 50))
	if _, err := DecompressEntries([]byte("XXXX")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := DecompressEntries(comp[:len(comp)/2]); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(100, 25) != 0.25 {
		t.Fatal("ratio wrong")
	}
	if Ratio(0, 10) != 1 {
		t.Fatal("zero original should yield 1")
	}
}
