// Package logcomp implements the two-stage log compression of paper §6.4: a
// general-purpose compressor (the paper uses bzip2; we use stdlib flate)
// plus "a lossless, VMM-specific (but application-independent) compression
// algorithm". Together they bring the AVMM log from ~8 MB/minute to ~2.5
// MB/minute for the game workload.
//
// The VMM-specific stage is column-oriented: a log is a stream of entries
// whose sequence numbers are consecutive, whose types repeat heavily, and
// whose contents (clock values, landmarks) are near-monotonic counters.
// Splitting the fields into separate streams and delta/varint-coding each
// exposes this structure to the entropy coder far better than compressing
// the row-major serialization.
package logcomp

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/tevlog"
)

// Flate compresses raw bytes with the general-purpose stage only (the
// paper's bzip2 baseline).
func Flate(data []byte) []byte {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestCompression)
	if err != nil {
		panic(fmt.Sprintf("logcomp: flate writer: %v", err)) // level is constant and valid
	}
	if _, err := w.Write(data); err != nil {
		panic(fmt.Sprintf("logcomp: compressing to memory: %v", err))
	}
	if err := w.Close(); err != nil {
		panic(fmt.Sprintf("logcomp: closing flate writer: %v", err))
	}
	return buf.Bytes()
}

// Unflate reverses Flate.
func Unflate(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("logcomp: decompressing: %w", err)
	}
	return out, nil
}

// magic identifies the columnar container format.
var magic = [4]byte{'A', 'V', 'L', '1'}

// CompressEntries applies the VMM-specific columnar transform to a segment
// and then flate-compresses each column. The result decodes back to the
// identical entry sequence (chain hashes excluded; they are recomputable).
func CompressEntries(entries []tevlog.Entry) []byte {
	if len(entries) == 0 {
		return append(magic[:], 0, 0, 0, 0)
	}
	// Column 1: sequence numbers, delta-coded (all-consecutive logs collapse
	// to a run of 1s). Column 2: types. Column 3: content lengths as
	// varints. Column 4: concatenated contents with intra-column word-level
	// delta coding for numeric payloads.
	var seqs, types, lens, contents []byte
	prev := entries[0].Seq - 1
	for i := range entries {
		e := &entries[i]
		seqs = binary.AppendUvarint(seqs, e.Seq-prev)
		prev = e.Seq
		types = append(types, byte(e.Type))
		lens = binary.AppendUvarint(lens, uint64(len(e.Content)))
		contents = append(contents, e.Content...)
	}
	out := make([]byte, 0, len(contents)/2+64)
	out = append(out, magic[:]...)
	var countBuf [4]byte
	binary.BigEndian.PutUint32(countBuf[:], uint32(len(entries)))
	out = append(out, countBuf[:]...)
	for _, col := range [][]byte{seqs, types, lens, contents} {
		comp := Flate(col)
		out = binary.AppendUvarint(out, uint64(len(comp)))
		out = append(out, comp...)
	}
	return out
}

// DecompressEntries reverses CompressEntries.
func DecompressEntries(data []byte) ([]tevlog.Entry, error) {
	if len(data) < 8 || !bytes.Equal(data[:4], magic[:]) {
		return nil, errors.New("logcomp: bad magic")
	}
	count := binary.BigEndian.Uint32(data[4:8])
	data = data[8:]
	if count == 0 {
		return nil, nil
	}
	cols := make([][]byte, 4)
	for i := range cols {
		n, used := binary.Uvarint(data)
		if used <= 0 || uint64(len(data)-used) < n {
			return nil, errors.New("logcomp: truncated column")
		}
		raw, err := Unflate(data[used : used+int(n)])
		if err != nil {
			return nil, err
		}
		cols[i] = raw
		data = data[used+int(n):]
	}
	seqs, types, lens, contents := cols[0], cols[1], cols[2], cols[3]
	if uint32(len(types)) != count {
		return nil, errors.New("logcomp: type column length mismatch")
	}
	entries := make([]tevlog.Entry, count)
	var seq uint64
	for i := range entries {
		d, used := binary.Uvarint(seqs)
		if used <= 0 {
			return nil, errors.New("logcomp: truncated seq column")
		}
		seqs = seqs[used:]
		seq += d
		n, used := binary.Uvarint(lens)
		if used <= 0 {
			return nil, errors.New("logcomp: truncated len column")
		}
		lens = lens[used:]
		if uint64(len(contents)) < n {
			return nil, errors.New("logcomp: truncated content column")
		}
		entries[i] = tevlog.Entry{
			Seq:     seq,
			Type:    tevlog.EntryType(types[i]),
			Content: append([]byte(nil), contents[:n]...),
		}
		contents = contents[n:]
	}
	if len(contents) != 0 {
		return nil, errors.New("logcomp: trailing content bytes")
	}
	return entries, nil
}

// Ratio returns compressed/original as a convenience for reporting.
func Ratio(original, compressed int) float64 {
	if original == 0 {
		return 1
	}
	return float64(compressed) / float64(original)
}
