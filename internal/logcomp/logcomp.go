// Package logcomp implements the two-stage log compression of paper §6.4: a
// general-purpose compressor (the paper uses bzip2; we use stdlib flate)
// plus "a lossless, VMM-specific (but application-independent) compression
// algorithm". Together they bring the AVMM log from ~8 MB/minute to ~2.5
// MB/minute for the game workload.
//
// The VMM-specific stage is column-oriented: a log is a stream of entries
// whose sequence numbers are consecutive, whose types repeat heavily, and
// whose contents (clock values, landmarks) are near-monotonic counters.
// Splitting the fields into separate streams and delta/varint-coding each
// exposes this structure to the entropy coder far better than compressing
// the row-major serialization.
package logcomp

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"repro/internal/tevlog"
)

// Flate compresses raw bytes with the general-purpose stage only (the
// paper's bzip2 baseline).
//
// Invariant: flate.NewWriter only fails on an invalid level (ours is the
// constant BestCompression) and a flate.Writer writing into a bytes.Buffer
// cannot return an error (bytes.Buffer.Write never does; it panics on OOM
// like any allocation). Flate therefore has no error to return; the panics
// below guard the invariant rather than signal recoverable conditions.
func Flate(data []byte) []byte {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestCompression)
	if err != nil {
		panic(fmt.Sprintf("logcomp: flate writer: %v", err)) // level is constant and valid
	}
	if _, err := w.Write(data); err != nil {
		panic(fmt.Sprintf("logcomp: compressing to memory: %v", err))
	}
	if err := w.Close(); err != nil {
		panic(fmt.Sprintf("logcomp: closing flate writer: %v", err))
	}
	return buf.Bytes()
}

// Unflate reverses Flate.
func Unflate(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("logcomp: decompressing: %w", err)
	}
	return out, nil
}

// magic identifies the columnar container format.
var magic = [4]byte{'A', 'V', 'L', '1'}

// CompressEntries applies the VMM-specific columnar transform to a segment
// and then flate-compresses each column. The result decodes back to the
// identical entry sequence (chain hashes excluded; they are recomputable).
// It is a thin wrapper over EntryWriter, which streams the same encoding;
// the two produce bit-identical containers. Like Flate, it writes only to
// memory, where compression cannot fail (the invariant documented there).
func CompressEntries(entries []tevlog.Entry) []byte {
	// Column 1: sequence numbers, delta-coded (all-consecutive logs collapse
	// to a run of 1s). Column 2: types. Column 3: content lengths as
	// varints. Column 4: concatenated contents.
	w := NewEntryWriter()
	for i := range entries {
		if err := w.Add(&entries[i]); err != nil {
			panic(fmt.Sprintf("logcomp: compressing to memory: %v", err))
		}
	}
	out, err := w.Bytes()
	if err != nil {
		panic(fmt.Sprintf("logcomp: compressing to memory: %v", err))
	}
	return out
}

// DecompressEntries reverses CompressEntries. It is a thin wrapper over
// EntryReader, which decodes the same container incrementally; truncated or
// trailing column streams are rejected with an error naming the column.
func DecompressEntries(data []byte) ([]tevlog.Entry, error) {
	r, err := NewEntryReader(data)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var entries []tevlog.Entry
	for {
		e, err := r.Next()
		if err == io.EOF {
			return entries, nil
		}
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
}

// Ratio returns compressed/original as a convenience for reporting.
func Ratio(original, compressed int) float64 {
	if original == 0 {
		return 1
	}
	return float64(compressed) / float64(original)
}
