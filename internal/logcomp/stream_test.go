package logcomp

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tevlog"
)

// legacyCompress is the original batch encoder, kept verbatim as a test
// oracle: EntryWriter must keep producing bit-identical containers, so logs
// compressed by older builds stay decodable and vice versa.
func legacyCompress(entries []tevlog.Entry) []byte {
	if len(entries) == 0 {
		return append(magic[:], 0, 0, 0, 0)
	}
	var seqs, types, lens, contents []byte
	prev := entries[0].Seq - 1
	for i := range entries {
		e := &entries[i]
		seqs = binary.AppendUvarint(seqs, e.Seq-prev)
		prev = e.Seq
		types = append(types, byte(e.Type))
		lens = binary.AppendUvarint(lens, uint64(len(e.Content)))
		contents = append(contents, e.Content...)
	}
	out := make([]byte, 0, len(contents)/2+64)
	out = append(out, magic[:]...)
	var countBuf [4]byte
	binary.BigEndian.PutUint32(countBuf[:], uint32(len(entries)))
	out = append(out, countBuf[:]...)
	for _, col := range [][]byte{seqs, types, lens, contents} {
		comp := Flate(col)
		out = binary.AppendUvarint(out, uint64(len(comp)))
		out = append(out, comp...)
	}
	return out
}

func entriesEqual(a, b []tevlog.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || a[i].Type != b[i].Type || !bytes.Equal(a[i].Content, b[i].Content) {
			return false
		}
	}
	return true
}

// readAll drains an EntryReader.
func readAll(t *testing.T, data []byte) ([]tevlog.Entry, error) {
	t.Helper()
	r, err := NewEntryReader(data)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var out []tevlog.Entry
	for {
		e, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

// TestStreamingRoundTripEquivalence: EntryWriter→EntryReader round-trips
// arbitrary entry sequences identically to CompressEntries→DecompressEntries,
// and both encoders emit bit-identical containers.
func TestStreamingRoundTripEquivalence(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		entries := randomEntries(rng, int(nRaw%120))

		w := NewEntryWriter()
		for i := range entries {
			if err := w.Add(&entries[i]); err != nil {
				return false
			}
		}
		streamed, err := w.Bytes()
		if err != nil {
			return false
		}
		batch := CompressEntries(entries)
		if !bytes.Equal(streamed, batch) {
			return false
		}
		if !bytes.Equal(streamed, legacyCompress(entries)) {
			return false
		}

		fromStream, err := readAll(t, streamed)
		if err != nil {
			return false
		}
		fromBatch, err := DecompressEntries(batch)
		if err != nil {
			return false
		}
		return entriesEqual(fromStream, entries) && entriesEqual(fromBatch, entries)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestEntryReaderEmpty(t *testing.T) {
	w := NewEntryWriter()
	data, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	out, err := readAll(t, data)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty container: entries=%d err=%v", len(out), err)
	}
}

// TestEntryReaderPreciseTruncationErrors: every truncation point yields an
// error (never a short success), and header-level cuts name the column.
func TestEntryReaderPreciseTruncationErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	entries := randomEntries(rng, 64)
	data := CompressEntries(entries)
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecompressEntries(data[:cut]); err == nil {
			t.Fatalf("truncation at byte %d of %d decoded without error", cut, len(data))
		}
	}
}

// TestEntryReaderRejectsTrailingColumnBytes: a container whose columns hold
// more rows than the declared count is rejected.
func TestEntryReaderRejectsTrailingColumnBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	entries := randomEntries(rng, 10)
	data := CompressEntries(entries)
	// Lower the declared count; every column now has trailing rows.
	binary.BigEndian.PutUint32(data[4:8], 9)
	if _, err := DecompressEntries(data); err == nil {
		t.Fatal("container with undercounted rows decoded without error")
	}
}

// TestEntryReaderIncremental: entries arrive one Next at a time, in order,
// before the reader has been drained.
func TestEntryReaderIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	entries := randomEntries(rng, 33)
	r, err := NewEntryReader(CompressEntries(entries))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := range entries {
		e, err := r.Next()
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if e.Seq != entries[i].Seq || e.Type != entries[i].Type || !bytes.Equal(e.Content, entries[i].Content) {
			t.Fatalf("entry %d differs", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("after last entry: err=%v, want io.EOF", err)
	}
}
