package logcomp

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/tevlog"
)

// This file implements the streaming face of the columnar container:
// EntryWriter encodes entries as they are appended, EntryReader decodes
// them one at a time through flate.Readers over the column streams. The
// batch CompressEntries/DecompressEntries functions are thin wrappers, so
// the two paths produce bit-identical containers and identical entry
// sequences by construction.
//
// Streaming matters for the auditor: a multi-hour log decodes in constant
// memory (four ~32 KiB flate windows plus one entry), and the first entry
// is available for chain verification and replay before the bulk of the
// container has even been read.

// columnNames label the four column streams in decode errors.
var columnNames = [4]string{"seq", "type", "len", "content"}

// EntrySource is a sequential supplier of log entries: Next returns the
// next entry or io.EOF at a clean end of log; any other error means the
// underlying encoding is corrupt or truncated, and the consumer treats it
// exactly as a failed container decode. EntryReader implements it over an
// in-memory container; the disk archive implements it over epoch
// segments, which is how the stream engine audits a log that never fits
// in memory.
type EntrySource interface {
	// Next returns the next entry, io.EOF at the end, or a decode error.
	Next() (tevlog.Entry, error)
	// Close releases the source's resources; Next must not be called
	// afterwards.
	Close() error
}

var _ EntrySource = (*EntryReader)(nil)

// EntryWriter incrementally encodes an entry sequence into the columnar
// container. Entries stream through per-column flate compressors as they
// are added, so only the compressed columns are ever resident. Bytes
// finalizes the container.
type EntryWriter struct {
	count   uint32
	prevSeq uint64
	bufs    [4]bytes.Buffer
	comps   [4]*flate.Writer
	scratch [binary.MaxVarintLen64]byte
	err     error
}

// NewEntryWriter returns an empty writer.
func NewEntryWriter() *EntryWriter {
	w := &EntryWriter{}
	for i := range w.comps {
		fw, err := flate.NewWriter(&w.bufs[i], flate.BestCompression)
		if err != nil {
			panic(fmt.Sprintf("logcomp: flate writer: %v", err)) // level is constant and valid
		}
		w.comps[i] = fw
	}
	return w
}

// writeColumn appends bytes to one column stream, latching the first error.
func (w *EntryWriter) writeColumn(col int, b []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.comps[col].Write(b); err != nil {
		w.err = fmt.Errorf("logcomp: compressing %s column: %w", columnNames[col], err)
	}
}

func (w *EntryWriter) writeUvarint(col int, v uint64) {
	n := binary.PutUvarint(w.scratch[:], v)
	w.writeColumn(col, w.scratch[:n])
}

// Add appends one entry to the container. The entry's chain hash is not
// stored (it is recomputable; see tevlog.Rechain). Errors are sticky.
func (w *EntryWriter) Add(e *tevlog.Entry) error {
	if w.err != nil {
		return w.err
	}
	if w.count == 0 {
		w.prevSeq = e.Seq - 1
	}
	w.writeUvarint(0, e.Seq-w.prevSeq)
	w.prevSeq = e.Seq
	w.writeColumn(1, []byte{byte(e.Type)})
	w.writeUvarint(2, uint64(len(e.Content)))
	w.writeColumn(3, e.Content)
	if w.err == nil {
		w.count++
	}
	return w.err
}

// Bytes closes the column compressors and assembles the container. The
// writer must not be used afterwards.
func (w *EntryWriter) Bytes() ([]byte, error) {
	if w.err != nil {
		return nil, w.err
	}
	if w.count == 0 {
		return append(magic[:], 0, 0, 0, 0), nil
	}
	out := make([]byte, 0, w.bufs[3].Len()+64)
	out = append(out, magic[:]...)
	var countBuf [4]byte
	binary.BigEndian.PutUint32(countBuf[:], w.count)
	out = append(out, countBuf[:]...)
	for i := range w.comps {
		if err := w.comps[i].Close(); err != nil {
			return nil, fmt.Errorf("logcomp: closing %s column: %w", columnNames[i], err)
		}
		out = binary.AppendUvarint(out, uint64(w.bufs[i].Len()))
		out = append(out, w.bufs[i].Bytes()...)
	}
	return out, nil
}

// EntryReader incrementally decodes a columnar container, yielding entries
// one at a time. Column streams are read through flate.Readers, so resident
// memory is four decompressor windows plus the entry being assembled —
// independent of the container's entry count.
type EntryReader struct {
	remaining uint32
	total     uint32
	seq       uint64
	cols      [4]*bufio.Reader
	closers   [4]io.ReadCloser
}

// NewEntryReader parses the container header and opens the column streams.
func NewEntryReader(data []byte) (*EntryReader, error) {
	if len(data) < 8 || !bytes.Equal(data[:4], magic[:]) {
		return nil, errors.New("logcomp: bad magic")
	}
	r := &EntryReader{}
	r.total = binary.BigEndian.Uint32(data[4:8])
	r.remaining = r.total
	data = data[8:]
	if r.total == 0 {
		return r, nil
	}
	for i := range r.cols {
		n, used := binary.Uvarint(data)
		if used <= 0 || uint64(len(data)-used) < n {
			return nil, fmt.Errorf("logcomp: truncated %s column: header claims %d compressed bytes, %d remain",
				columnNames[i], n, max(len(data)-used, 0))
		}
		fr := flate.NewReader(bytes.NewReader(data[used : used+int(n)]))
		r.closers[i] = fr.(io.ReadCloser)
		r.cols[i] = bufio.NewReaderSize(fr, 512)
		data = data[used+int(n):]
	}
	return r, nil
}

// colErr wraps a flate/IO error with the column it came from, normalizing
// the bare EOF a truncated stream surfaces mid-value.
func colErr(col int, err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("logcomp: truncated %s column stream", columnNames[col])
	}
	return fmt.Errorf("logcomp: %s column: %w", columnNames[col], err)
}

// Next decodes the next entry. It returns io.EOF after the last entry, once
// every column stream has been verified to be fully consumed.
func (r *EntryReader) Next() (tevlog.Entry, error) {
	if r.remaining == 0 {
		if r.total > 0 {
			if err := r.checkExhausted(); err != nil {
				return tevlog.Entry{}, err
			}
		}
		return tevlog.Entry{}, io.EOF
	}
	d, err := binary.ReadUvarint(r.cols[0])
	if err != nil {
		return tevlog.Entry{}, colErr(0, err)
	}
	typ, err := r.cols[1].ReadByte()
	if err != nil {
		return tevlog.Entry{}, colErr(1, err)
	}
	n, err := binary.ReadUvarint(r.cols[2])
	if err != nil {
		return tevlog.Entry{}, colErr(2, err)
	}
	if n > uint64(1)<<31 {
		return tevlog.Entry{}, fmt.Errorf("logcomp: implausible content length %d", n)
	}
	content := make([]byte, n)
	if _, err := io.ReadFull(r.cols[3], content); err != nil {
		return tevlog.Entry{}, colErr(3, err)
	}
	r.seq += d
	r.remaining--
	return tevlog.Entry{Seq: r.seq, Type: tevlog.EntryType(typ), Content: content}, nil
}

// checkExhausted verifies that no column stream carries bytes beyond the
// declared entry count — a malformed container the row-by-row decode loop
// would otherwise silently accept.
func (r *EntryReader) checkExhausted() error {
	for i, col := range r.cols {
		if _, err := col.ReadByte(); err != io.EOF {
			if i == 3 {
				return errors.New("logcomp: trailing content bytes")
			}
			return fmt.Errorf("logcomp: trailing bytes in %s column", columnNames[i])
		}
	}
	return nil
}

// Close releases the column decompressors. It is safe to call at any point;
// entries already returned remain valid.
func (r *EntryReader) Close() error {
	for _, c := range r.closers {
		if c != nil {
			c.Close() // flate.Reader.Close only reports already-seen errors
		}
	}
	return nil
}
