package experiments

import (
	"fmt"
	"strings"

	"repro/internal/avmm"
	"repro/internal/lang"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sig"
)

// pingPorts is the minimal port prelude for the ping guests.
const pingPorts = `
const CLOCK_LO = 0x01;
const NET_RX_STATUS = 0x20;
const NET_RX_LEN = 0x21;
const NET_RX_FROM = 0x22;
const NET_RX_BYTE = 0x23;
const NET_RX_DONE = 0x24;
const NET_TX_BYTE = 0x28;
const NET_TX_COMMIT = 0x29;
const DEBUG = 0x60;
`

// pingClientTemplate sends {{PINGS}} 56-byte echo requests and reports each
// round-trip time (µs) on the debug port — the guest-level equivalent of
// the paper's 100 ICMP Echo Requests (§6.8).
const pingClientTemplate = pingPorts + `
const N = {{PINGS}};
interrupt(1) func on_net() { }
func main() {
	sti();
	var i = 0;
	while (i < N) {
		var t0 = in(CLOCK_LO);
		out(NET_TX_BYTE, 'P');
		out(NET_TX_BYTE, i & 0xFF);
		var p = 0;
		while (p < 54) { out(NET_TX_BYTE, 0); p = p + 1; }
		out(NET_TX_COMMIT, 1);
		while (in(NET_RX_STATUS) == 0) { wfi(); }
		var n = in(NET_RX_LEN);
		out(NET_RX_DONE, 0);
		var t1 = in(CLOCK_LO);
		out(DEBUG, t1 - t0);
		i = i + 1;
	}
	halt();
}
`

// pingEchoSource answers echo requests forever.
const pingEchoSource = pingPorts + `
interrupt(1) func on_net() { }
func main() {
	sti();
	while (1) {
		while (in(NET_RX_STATUS) == 0) { wfi(); }
		var n = in(NET_RX_LEN);
		var from = in(NET_RX_FROM);
		out(NET_TX_BYTE, 'E');
		out(NET_TX_BYTE, in(NET_RX_BYTE));
		var p = 0;
		while (p < 54) { out(NET_TX_BYTE, 0); p = p + 1; }
		out(NET_RX_DONE, 0);
		out(NET_TX_COMMIT, from);
	}
}
`

// pingNsPerInstr runs ping guests at 20 MIPS so guest processing stays in
// the tens of microseconds, as on real hardware.
const pingNsPerInstr = 50

// Fig5Row is one configuration's RTT distribution in microseconds.
type Fig5Row struct {
	Mode        avmm.Mode
	MedianUs    float64
	P5Us, P95Us float64
	Samples     int
}

// Fig5Result reproduces Figure 5: ping round-trip times across the five
// configurations.
type Fig5Result struct {
	Rows []Fig5Row
}

// RunFig5 measures RTTs per configuration.
func RunFig5(scale Scale) (*Fig5Result, error) {
	res := &Fig5Result{}
	for _, mode := range AllModes {
		samples, err := runPing(mode, scale.Pings)
		if err != nil {
			return nil, fmt.Errorf("fig5 %v: %w", mode, err)
		}
		res.Rows = append(res.Rows, Fig5Row{
			Mode:     mode,
			MedianUs: metrics.Median(samples),
			P5Us:     metrics.Percentile(samples, 5),
			P95Us:    metrics.Percentile(samples, 95),
			Samples:  len(samples),
		})
	}
	return res, nil
}

func runPing(mode avmm.Mode, pings int) ([]float64, error) {
	clientSrc := strings.ReplaceAll(pingClientTemplate, "{{PINGS}}", fmt.Sprint(pings))
	clientImg, err := lang.Compile("ping-client", clientSrc, lang.Options{MemSize: 64 * 1024})
	if err != nil {
		return nil, err
	}
	echoImg, err := lang.Compile("ping-echo", pingEchoSource, lang.Options{MemSize: 64 * 1024})
	if err != nil {
		return nil, err
	}
	net := netsim.New(netsim.Config{BaseLatencyNs: 96_000, JitterNs: 25_000, Seed: 31})
	keys := sig.NewKeyStore()
	w := avmm.NewWorld(net, keys)
	w.SliceNs = 50_000 // fine-grained delivery so RTTs are not quantized
	signer := func(id sig.NodeID) sig.Signer {
		if mode.Signs() {
			return sig.SizedSigner{Node: id, Size: sig.PaperSigBytes}
		}
		return sig.NullSigner{Node: id}
	}
	cost := avmm.DefaultCostModel()
	client, err := avmm.NewMonitor(avmm.Config{
		Node: "pinger", Index: 0, Mode: mode, Cost: cost, Signer: signer("pinger"),
		Keys: keys, Image: clientImg, Net: net, NsPerInstr: pingNsPerInstr, RNGSeed: 5,
	})
	if err != nil {
		return nil, err
	}
	echo, err := avmm.NewMonitor(avmm.Config{
		Node: "target", Index: 1, Mode: mode, Cost: cost, Signer: signer("target"),
		Keys: keys, Image: echoImg, Net: net, NsPerInstr: pingNsPerInstr, RNGSeed: 6,
	})
	if err != nil {
		return nil, err
	}
	if err := w.Add(client); err != nil {
		return nil, err
	}
	if err := w.Add(echo); err != nil {
		return nil, err
	}
	deadline := uint64(pings+20) * 50_000_000 // generous: 50 virtual ms per ping
	w.RunUntil(func() bool { return client.Machine.Halted }, deadline)
	if client.Machine.FaultInfo != nil {
		return nil, fmt.Errorf("ping guest faulted: %v", client.Machine.FaultInfo)
	}
	samples := make([]float64, 0, len(client.Devs.Debug))
	for _, rtt := range client.Devs.Debug {
		samples = append(samples, float64(rtt))
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("ping in mode %v produced no samples (halted=%v)", mode, client.Machine.Halted)
	}
	return samples, nil
}

// Table renders Figure 5.
func (r *Fig5Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 5: ping round-trip times", "config", "median (µs)", "p5 (µs)", "p95 (µs)", "samples")
	for _, row := range r.Rows {
		t.Row(row.Mode.String(), row.MedianUs, row.P5Us, row.P95Us, row.Samples)
	}
	return t
}
