package experiments

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/dbapp"
	"repro/internal/game"
	"repro/internal/logcomp"
	"repro/internal/metrics"
	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
	"repro/internal/vm"
	"repro/internal/wire"
)

// This file is the audit-throughput experiment behind BENCH_audit.json: a
// worker-count ablation of the epoch-parallel audit engine plus the
// primitive rates (Merkle state hashing, signature verification) that
// bound it. Future PRs regress against the emitted numbers.

// AuditWorkerRow is one worker count of the replay ablation.
type AuditWorkerRow struct {
	Workers      int     `json:"workers"`
	WallNs       int64   `json:"wall_ns"`
	Speedup      float64 `json:"speedup_vs_serial"`
	MInstrPerSec float64 `json:"minstr_per_sec"`
	VerdictMatch bool    `json:"verdict_match"`
}

// AuditBenchResult aggregates audit-engine throughput: serial vs parallel
// full-log replay, parallel spot checking, Merkle root hashing, and
// authenticator signature verification.
type AuditBenchResult struct {
	CPUs int `json:"cpus"`

	// Full-audit replay over a recorded match with periodic snapshots.
	LogEntries          int              `json:"log_entries"`
	LogBytes            int              `json:"log_bytes"`
	ReplayedInstr       uint64           `json:"replayed_instructions"`
	SerialWallNs        int64            `json:"serial_wall_ns"`
	SerialEntriesPerSec float64          `json:"serial_entries_per_sec"`
	SerialMInstrPerSec  float64          `json:"serial_minstr_per_sec"`
	Workers             []AuditWorkerRow `json:"workers_ablation"`
	// ParallelMInstrPerSec is the best replay throughput over the worker
	// ablation — the headline rate a multi-core auditor sustains.
	ParallelMInstrPerSec float64 `json:"parallel_minstr_per_sec"`

	// Predecode ablation: the same serial audit with the interpreter forced
	// onto the careful Step path (no predecoded sprint). The speedup is the
	// factor the predecode cache buys on real replay, and the verdict must
	// not depend on which path executed.
	NoPredecodeWallNs     int64   `json:"serial_nopredecode_wall_ns"`
	PredecodeSpeedup      float64 `json:"predecode_speedup_vs_step"`
	PredecodeVerdictMatch bool    `json:"predecode_verdict_match"`

	// Fusion ablation: the same serial audit with the superinstruction
	// fusion pass disabled — the sprint loop still runs over predecoded
	// pages, but every cached instruction retires with its own dispatch.
	// The verdict must not depend on whether pairs were fused.
	//
	// The CI-gated speedup is measured on the stage fusion actually
	// touches — the semantic replay — as the ratio of min-of-five replay
	// walls with fusion off vs on: the end-to-end audit wall also spends
	// time in chain verification and signature checks, which both dilute
	// the ratio and dominate its run-to-run noise on a quick-scale log.
	// FusedPairs counts fused pairs retired by the fusion-on replay (a
	// quad counts as two) and FusedQuads the quad superinstructions; each
	// fused pair saves one dispatch and each quad one more, so dispatches
	// per retired instruction is (ICount - FusedPairs - FusedQuads) /
	// ICount.
	NoFusionWallNs     int64   `json:"serial_nofusion_wall_ns"`
	FusionSpeedup      float64 `json:"fusion_speedup_vs_predecode"`
	FusionVerdictMatch bool    `json:"fusion_verdict_match"`
	FusedPairs         uint64  `json:"fused_pairs_retired"`
	FusedQuads         uint64  `json:"fused_quads_retired"`
	DispatchesPerInstr float64 `json:"dispatches_per_instruction"`

	// Streaming pipeline (decode ∥ chain-verify ∥ replay) against the
	// materializing pipeline (decompress, rechain, then parallel audit)
	// over the same compressed container, at StreamWorkers workers.
	CompressedBytes     int     `json:"compressed_bytes"`
	MaterializedWallNs  int64   `json:"materialized_wall_ns"`
	StreamWallNs        int64   `json:"stream_wall_ns"`
	StreamSpeedup       float64 `json:"stream_speedup_vs_materialized"`
	StreamWorkers       int     `json:"stream_workers"`
	StreamWindow        int     `json:"stream_window"`
	StreamPeakResident  int     `json:"stream_peak_resident_entries"`
	StreamEpochs        int     `json:"stream_epochs"`
	StreamVerdictMatch  bool    `json:"stream_verdict_match"`
	StreamEntriesPerSec float64 `json:"stream_entries_per_sec"`

	// Archive-backed audit: the same streaming audit reading epoch
	// segments and snapshot increments from a disk archive
	// (internal/archive) instead of an in-memory container. Cold is the
	// first pass after open — every segment read, hashed and decoded off
	// disk; warm is a second pass over the same open archive, with
	// increments memoized. The verdict must be byte-identical to the
	// in-memory stream audit.
	ArchiveBytes             int64   `json:"archive_bytes"`
	ArchiveColdWallNs        int64   `json:"archive_cold_wall_ns"`
	ArchiveWarmWallNs        int64   `json:"archive_warm_wall_ns"`
	ArchiveColdEntriesPerSec float64 `json:"archive_cold_entries_per_sec"`
	ArchiveWarmEntriesPerSec float64 `json:"archive_warm_entries_per_sec"`
	ArchiveVerdictMatch      bool    `json:"archive_verdict_match"`

	// Distributed dispatch: the same full audit with epochs shipped to
	// loopback TCP workers, against the in-process pool at the same
	// fan-out. The overhead ratio is what the wire codec, coordinator-side
	// root verification and verdict merge cost on top of local replay; the
	// merge and prep walls break the coordinator's share out.
	DistWorkers       int     `json:"dist_workers"`
	DistEpochs        int     `json:"dist_epochs"`
	DistWallNs        int64   `json:"dist_wall_ns"`
	DistLocalWallNs   int64   `json:"dist_local_same_workers_wall_ns"`
	DistOverheadRatio float64 `json:"dist_overhead_ratio"`
	DistPrepWallNs    int64   `json:"dist_prep_wall_ns"`
	DistMergeWallNs   int64   `json:"dist_merge_wall_ns"`
	DistJobBytes      int     `json:"dist_job_bytes"`
	DistRedispatches  int     `json:"dist_redispatches"`
	DistVerdictMatch  bool    `json:"dist_verdict_match"`

	// Long-running coordinator service: the same loopback fleet behind the
	// elastic epoch queue, several audits in flight concurrently through one
	// multiplexed, session-cached connection per worker. Epochs/sec is the
	// sustained rate of the shared queue; utilization is the fraction of
	// fleet-time connections had at least one job in flight.
	CoordWorkers          int     `json:"coord_workers"`
	CoordRuns             int     `json:"coord_concurrent_audits"`
	CoordWallNs           int64   `json:"coord_wall_ns"`
	CoordEpochsDone       int64   `json:"coord_epochs_done"`
	CoordEpochsPerSec     float64 `json:"coord_epochs_per_sec"`
	CoordFleetUtilization float64 `json:"coord_fleet_utilization"`
	CoordRetries          int64   `json:"coord_retries"`
	CoordVerdictMatch     bool    `json:"coord_verdict_match"`

	// Journaled crash-resume: a journaled coordinator whose only worker
	// (behind a verdict-filter proxy) never answers for epoch 0 is killed
	// once CoordResumeKillAfter later verdicts are durable; a fresh
	// coordinator over the same journal and an honest fleet then finishes
	// the audit. The gated rows are the epochs the successor emitted from
	// the journal without re-dispatching, the verdict match against the
	// serial engine, and the wall-clock ratio an uninterrupted journaled
	// run pays over an identical un-journaled one (the fsync-batched WAL
	// overhead).
	CoordResumeKillAfter      int     `json:"coord_resume_kill_after_verdicts"`
	CoordResumeRunsResumed    int64   `json:"coord_resume_runs_resumed"`
	CoordResumeEpochsSkipped  int64   `json:"coord_resume_epochs_skipped"`
	CoordResumeVerdictMatch   bool    `json:"coord_resume_verdict_match"`
	CoordJournalBytes         int64   `json:"coord_journal_bytes"`
	CoordJournaledWallNs      int64   `json:"coord_journaled_wall_ns"`
	CoordUnjournaledWallNs    int64   `json:"coord_unjournaled_wall_ns"`
	CoordJournalOverheadRatio float64 `json:"coord_journal_overhead_ratio"`

	// Delta-shipped dispatch: a denser-snapshot recording of the same match
	// audited twice over the same loopback fleet — full-state jobs vs
	// proof-carrying dirty-page increments — so the byte reduction is
	// measured on identical work. The fold-verify wall is what a stateless
	// worker pays to reconstruct and check the entire snapshot chain from
	// deltas alone, before any replay runs.
	DeltaDistEpochs       int     `json:"delta_dist_epochs"`
	DeltaJobBytesFull     int     `json:"dist_job_bytes_full_state"`
	DeltaJobBytes         int     `json:"dist_job_bytes_delta"`
	DeltaBytesReduction   float64 `json:"delta_bytes_reduction_vs_full"`
	DeltaJobsShipped      int     `json:"delta_jobs_shipped"`
	DeltaFallbacks        int     `json:"delta_fallbacks"`
	DeltaDistWallNs       int64   `json:"delta_dist_wall_ns"`
	DeltaFoldedSnapshots  int     `json:"delta_folded_snapshots"`
	DeltaFoldVerifyWallNs int64   `json:"delta_fold_verify_wall_ns"`
	DeltaVerdictMatch     bool    `json:"delta_verdict_match"`

	// Spot-checking every segment of the minisql log, serial vs parallel.
	SpotSegments       int   `json:"spot_segments"`
	SpotSerialWallNs   int64 `json:"spot_serial_wall_ns"`
	SpotParallelWallNs int64 `json:"spot_parallel_wall_ns"`
	SpotWorkers        int   `json:"spot_workers"`

	// Merkle snapshot-root hashing throughput.
	MerkleBytes        int     `json:"merkle_bytes"`
	MerkleSerialGBps   float64 `json:"merkle_serial_gb_per_sec"`
	MerkleParallelGBps float64 `json:"merkle_parallel_gb_per_sec"`
	MerkleWorkers      int     `json:"merkle_workers"`

	// Incremental (live-tree) snapshot verification vs a full rehash of the
	// same state: what one snapshot entry costs the replay. The incremental
	// fold touches only the dirty pages and the union of their root paths,
	// so its cost scales with IncVerifyDirtyPages, not IncVerifyStatePages.
	IncVerifyStatePages      int     `json:"inc_verify_state_pages"`
	IncVerifyDirtyPages      int     `json:"inc_verify_dirty_pages"`
	MerkleFullVerifyNs       int64   `json:"merkle_full_verify_ns_per_snapshot"`
	MerkleIncVerifyNs        int64   `json:"merkle_inc_verify_ns_per_snapshot"`
	MerkleIncSpeedup         float64 `json:"merkle_inc_speedup_vs_full"`
	MerkleFullVerifiesPerSec float64 `json:"merkle_full_verifies_per_sec"`
	MerkleIncVerifiesPerSec  float64 `json:"merkle_inc_verifies_per_sec"`

	// RSA authenticator verification rate (DefaultKeyBits keys).
	VerifyOpsPerSec float64 `json:"rsa_verify_ops_per_sec"`
	VerifyKeyBits   int     `json:"rsa_key_bits"`
}

// auditWorkerCounts is the ablation grid.
var auditWorkerCounts = []int{1, 2, 4, 8}

// AuditBenchOptions selects audit-experiment ablations.
type AuditBenchOptions struct {
	// DisableFusion runs every audit in the experiment with
	// superinstruction fusion off (avm-bench's -nofusion flag), for A/B
	// comparison of whole bench runs. The fusion ablation row then
	// compares two fusion-off replays and reports ~1.0x.
	DisableFusion bool
}

// RunAuditBench measures the audit engine end to end at every worker count
// and the primitive rates underneath it.
func RunAuditBench(scale Scale) (*AuditBenchResult, error) {
	return RunAuditBenchWith(scale, AuditBenchOptions{})
}

// RunAuditBenchWith is RunAuditBench with explicit ablation options.
func RunAuditBenchWith(scale Scale, opts AuditBenchOptions) (*AuditBenchResult, error) {
	res := &AuditBenchResult{CPUs: runtime.NumCPU()}

	// --- full-audit replay ablation on a recorded match ---
	s, err := game.NewScenario(game.ScenarioConfig{
		Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
		Seed: 1234, SnapshotEveryNs: scale.GameNs / 8, FakeSignatures: true,
		AuditDisableFusion: opts.DisableFusion,
	})
	if err != nil {
		return nil, err
	}
	s.Run(scale.GameNs)
	target := s.Player(1)
	res.LogEntries = target.Log.Len()
	res.LogBytes = target.TotalLogBytes()

	var serial *audit.Result
	serialWall := stopwatch(func() {
		serial, err = s.AuditNode(target.Node())
	})
	if err != nil {
		return nil, err
	}
	if !serial.Passed {
		return nil, fmt.Errorf("auditbench: serial audit failed: %v", serial.Fault)
	}
	res.SerialWallNs = serialWall.Nanoseconds()
	res.ReplayedInstr = serial.Replay.Instructions
	if sec := serialWall.Seconds(); sec > 0 {
		res.SerialEntriesPerSec = float64(res.LogEntries) / sec
		res.SerialMInstrPerSec = float64(res.ReplayedInstr) / sec / 1e6
	}

	for _, w := range auditWorkerCounts {
		var par *audit.Result
		wall := stopwatch(func() {
			par, err = s.AuditNodeParallel(target.Node(), w)
		})
		if err != nil {
			return nil, err
		}
		row := AuditWorkerRow{
			Workers:      w,
			WallNs:       wall.Nanoseconds(),
			VerdictMatch: par.Passed == serial.Passed && par.Replay == serial.Replay,
		}
		if wall > 0 {
			row.Speedup = float64(serialWall) / float64(wall)
			row.MInstrPerSec = float64(res.ReplayedInstr) / wall.Seconds() / 1e6
		}
		if row.MInstrPerSec > res.ParallelMInstrPerSec {
			res.ParallelMInstrPerSec = row.MInstrPerSec
		}
		res.Workers = append(res.Workers, row)
	}

	// --- predecode ablation: the same serial audit on the Step path ---
	target1, auths1, ablAuditor, err := s.AuditInputs(target.Node())
	if err != nil {
		return nil, err
	}
	ablAuditor.DisablePredecode = true
	var noPre *audit.Result
	noPreWall := stopwatch(func() {
		noPre = ablAuditor.AuditFull(target.Node(), uint32(target1.Index()), target1.Log.Entries(), auths1)
	})
	res.NoPredecodeWallNs = noPreWall.Nanoseconds()
	res.PredecodeVerdictMatch = noPre.Passed == serial.Passed && noPre.Replay == serial.Replay
	if serialWall > 0 {
		res.PredecodeSpeedup = float64(noPreWall) / float64(serialWall)
	}

	// --- fusion ablation: predecoded sprint without superinstructions ---
	targetF, authsF, fusAuditor, err := s.AuditInputs(target.Node())
	if err != nil {
		return nil, err
	}
	fusAuditor.DisableFusion = true
	var noFus *audit.Result
	noFusWall := stopwatch(func() {
		noFus = fusAuditor.AuditFull(target.Node(), uint32(targetF.Index()), targetF.Log.Entries(), authsF)
	})
	res.NoFusionWallNs = noFusWall.Nanoseconds()
	res.FusionVerdictMatch = noFus.Passed == serial.Passed && noFus.Replay == serial.Replay
	// The gated speedup compares bare semantic replays of the same log —
	// the only stage fusion touches — taking the min of five walls on
	// each side to damp scheduler noise. The last fusion-on replay also
	// supplies the dispatch counters (the verdict paths above never expose
	// the machine).
	replayWall := func(disable bool) (time.Duration, *vm.Machine, error) {
		best := time.Duration(1<<63 - 1)
		var mach *vm.Machine
		for i := 0; i < 5; i++ {
			rp, err := audit.NewReplayFromImage(target.Node(), fusAuditor.RefImage, fusAuditor.RNGSeed)
			if err != nil {
				return 0, nil, err
			}
			rp.Machine().DisableFusion = disable
			wall := stopwatch(func() {
				rp.Feed(targetF.Log.Entries())
				rp.Close()
				rp.Run()
			})
			if f := rp.Fault(); f != nil {
				return 0, nil, fmt.Errorf("auditbench: fusion replay faulted: %v", f)
			}
			if wall < best {
				best = wall
			}
			mach = rp.Machine()
		}
		return best, mach, nil
	}
	fusReplayWall, fusMach, err := replayWall(opts.DisableFusion)
	if err != nil {
		return nil, err
	}
	noFusReplayWall, _, err := replayWall(true)
	if err != nil {
		return nil, err
	}
	if fusReplayWall > 0 {
		res.FusionSpeedup = float64(noFusReplayWall) / float64(fusReplayWall)
	}
	res.FusedPairs = fusMach.FusedPairs
	res.FusedQuads = fusMach.FusedQuads
	if ic := fusMach.ICount; ic > 0 {
		res.DispatchesPerInstr = float64(ic-res.FusedPairs-res.FusedQuads) / float64(ic)
	}

	// --- streaming vs materializing pipeline over the compressed log ---
	target2, auths, auditor, err := s.AuditInputs(target.Node())
	if err != nil {
		return nil, err
	}
	compressed := logcomp.CompressEntries(target2.Log.Entries())
	res.CompressedBytes = len(compressed)
	res.StreamWorkers = runtime.NumCPU()
	res.StreamWindow = audit.DefaultStreamWindow
	materialize := func(snapIdx uint32) (*snapshot.Restored, error) {
		return target2.Snaps.Materialize(int(snapIdx))
	}
	var matRes *audit.Result
	matWall := stopwatch(func() {
		decoded, derr := logcomp.DecompressEntries(compressed)
		if derr != nil {
			err = derr
			return
		}
		if rerr := tevlog.Rechain(tevlog.Hash{}, decoded); rerr != nil {
			err = rerr
			return
		}
		matRes = auditor.AuditFullParallel(target.Node(), uint32(target2.Index()), decoded, auths,
			audit.ParallelOptions{EngineOptions: audit.EngineOptions{Workers: res.StreamWorkers, Materialize: materialize}})
	})
	if err != nil {
		return nil, err
	}
	res.MaterializedWallNs = matWall.Nanoseconds()
	var streamRes *audit.Result
	var streamStats audit.StreamStats
	streamWall := stopwatch(func() {
		streamRes, streamStats = auditor.AuditStream(target.Node(), uint32(target2.Index()), compressed, auths,
			audit.StreamOptions{EngineOptions: audit.EngineOptions{Workers: res.StreamWorkers, Window: res.StreamWindow, Materialize: materialize}})
	})
	res.StreamWallNs = streamWall.Nanoseconds()
	if streamWall > 0 {
		res.StreamSpeedup = float64(matWall) / float64(streamWall)
		res.StreamEntriesPerSec = float64(streamStats.Entries) / streamWall.Seconds()
	}
	res.StreamPeakResident = streamStats.PeakResidentEntries
	res.StreamEpochs = streamStats.Epochs
	res.StreamVerdictMatch = streamRes.Passed == matRes.Passed && streamRes.Replay == matRes.Replay &&
		streamRes.Syntactic == matRes.Syntactic
	if !streamRes.Passed {
		return nil, fmt.Errorf("auditbench: streaming audit failed: %v", streamRes.Fault)
	}

	// --- archive-backed audit: the stream pipeline reading off disk ---
	archDir, err := os.MkdirTemp("", "avm-bench-archive-")
	if err != nil {
		return nil, fmt.Errorf("auditbench: archive dir: %w", err)
	}
	defer os.RemoveAll(archDir)
	arcW, err := archive.Open(archDir)
	if err != nil {
		return nil, err
	}
	archNode := string(target.Node())
	sfArch := target2.Snaps.File()
	if err := arcW.WriteRecording(archNode, target2.Log.All(), &sfArch); err != nil {
		return nil, err
	}
	if err := arcW.Close(); err != nil {
		return nil, err
	}
	arc, err := archive.Open(archDir)
	if err != nil {
		return nil, err
	}
	defer arc.Close()
	res.ArchiveBytes = arc.Bytes()
	incSrc, err := arc.IncrementSource(archNode)
	if err != nil {
		return nil, err
	}
	archMaterialize := func(snapIdx uint32) (*snapshot.Restored, error) {
		return snapshot.MaterializeFrom(incSrc, int(snapIdx))
	}
	archAudit := func() (*audit.Result, audit.StreamStats, error) {
		src, serr := arc.EntrySource(archNode)
		if serr != nil {
			return nil, audit.StreamStats{}, serr
		}
		r, stats, aerr := auditor.Audit(audit.AuditRequest{
			Node: target.Node(), NodeIdx: uint32(target2.Index()),
			Engine: audit.EngineStream, Source: src, Auths: auths,
			Options: audit.EngineOptions{
				Workers: res.StreamWorkers, Window: res.StreamWindow,
				Materialize: archMaterialize,
			},
		})
		return r, stats.Stream, aerr
	}
	var archRes *audit.Result
	coldWall := stopwatch(func() {
		archRes, _, err = archAudit()
	})
	if err != nil {
		return nil, fmt.Errorf("auditbench: archive cold audit: %w", err)
	}
	coldMatch := archRes.Passed == streamRes.Passed && archRes.Replay == streamRes.Replay &&
		archRes.Syntactic == streamRes.Syntactic
	warmWall := stopwatch(func() {
		archRes, _, err = archAudit()
	})
	if err != nil {
		return nil, fmt.Errorf("auditbench: archive warm audit: %w", err)
	}
	res.ArchiveColdWallNs = coldWall.Nanoseconds()
	res.ArchiveWarmWallNs = warmWall.Nanoseconds()
	if coldWall > 0 {
		res.ArchiveColdEntriesPerSec = float64(res.LogEntries) / coldWall.Seconds()
	}
	if warmWall > 0 {
		res.ArchiveWarmEntriesPerSec = float64(res.LogEntries) / warmWall.Seconds()
	}
	res.ArchiveVerdictMatch = coldMatch &&
		archRes.Passed == streamRes.Passed && archRes.Replay == streamRes.Replay &&
		archRes.Syntactic == streamRes.Syntactic
	if !archRes.Passed {
		return nil, fmt.Errorf("auditbench: archive-backed audit failed: %v", archRes.Fault)
	}

	// --- distributed dispatch over loopback TCP workers ---
	res.DistWorkers = 3
	var listeners []net.Listener
	var addrs []string
	for i := 0; i < res.DistWorkers; i++ {
		l, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			return nil, fmt.Errorf("auditbench: worker listener: %w", lerr)
		}
		listeners = append(listeners, l)
		addrs = append(addrs, l.Addr().String())
		go audit.ServeEpochWorker(l)
	}
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	target3, auths3, distAuditor, err := s.AuditInputs(target.Node())
	if err != nil {
		return nil, err
	}
	entries3 := target3.Log.Entries()
	var localRes *audit.Result
	localWall := stopwatch(func() {
		localRes = distAuditor.AuditFullParallel(target.Node(), uint32(target3.Index()), entries3, auths3,
			audit.ParallelOptions{EngineOptions: audit.EngineOptions{Workers: res.DistWorkers, Materialize: materialize}})
	})
	res.DistLocalWallNs = localWall.Nanoseconds()
	var distRes *audit.Result
	var dstats audit.DistStats
	distWall := stopwatch(func() {
		distRes, dstats, err = distAuditor.AuditFullDist(target.Node(), uint32(target3.Index()), entries3, auths3,
			audit.DistOptions{
				Backend: &audit.TCPBackend{Addrs: addrs, JobTimeout: 2 * time.Minute},
				EngineOptions: audit.EngineOptions{
					Materialize: materialize,
					Workers:     res.DistWorkers,
				},
			})
	})
	if err != nil {
		return nil, fmt.Errorf("auditbench: distributed audit: %w", err)
	}
	res.DistWallNs = distWall.Nanoseconds()
	res.DistEpochs = dstats.Epochs
	res.DistPrepWallNs = dstats.PrepWallNs
	res.DistMergeWallNs = dstats.MergeWallNs
	res.DistJobBytes = dstats.WireBytes
	res.DistRedispatches = dstats.Redispatches
	res.DistVerdictMatch = distRes.Passed == localRes.Passed && distRes.Replay == localRes.Replay &&
		distRes.Syntactic == localRes.Syntactic &&
		distRes.Passed == serial.Passed && distRes.Replay == serial.Replay
	if localWall > 0 {
		res.DistOverheadRatio = float64(distWall) / float64(localWall)
	}
	if !distRes.Passed {
		return nil, fmt.Errorf("auditbench: distributed audit failed: %v", distRes.Fault)
	}

	// --- coordinator service over the same loopback fleet ---
	// Several audits of the same log run concurrently through one shared
	// epoch queue; local fallback is disabled so every epoch crosses the
	// wire and the utilization figure names what the fleet actually did.
	res.CoordWorkers = res.DistWorkers
	res.CoordRuns = 3
	coord := audit.NewCoordinator(audit.CoordinatorConfig{
		Pipeline: 2, JobTimeout: 2 * time.Minute, DisableLocalFallback: true,
	})
	for _, a := range addrs {
		coord.AddWorker(a)
	}
	// Wait for the fleet to attach so the measurement starts with live
	// connections rather than timing the initial dials.
	for deadline := time.Now().Add(10 * time.Second); coord.Stats().WorkersLive < res.CoordWorkers &&
		time.Now().Before(deadline); {
		time.Sleep(5 * time.Millisecond)
	}
	coordResults := make([]*audit.Result, res.CoordRuns)
	coordErrs := make([]error, res.CoordRuns)
	coordWall := stopwatch(func() {
		var wg sync.WaitGroup
		for i := 0; i < res.CoordRuns; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				coordResults[i], _, coordErrs[i] = coord.Audit(distAuditor, target.Node(), uint32(target3.Index()),
					entries3, auths3, audit.DistOptions{EngineOptions: audit.EngineOptions{Materialize: materialize}})
			}(i)
		}
		wg.Wait()
	})
	fleet := coord.Stats()
	coord.Close()
	for _, cerr := range coordErrs {
		if cerr != nil {
			return nil, fmt.Errorf("auditbench: coordinator audit: %w", cerr)
		}
	}
	res.CoordWallNs = coordWall.Nanoseconds()
	res.CoordEpochsDone = fleet.EpochsDone
	res.CoordRetries = fleet.Retries
	if sec := coordWall.Seconds(); sec > 0 {
		res.CoordEpochsPerSec = float64(fleet.EpochsDone) / sec
		res.CoordFleetUtilization = float64(fleet.BusyNs) / (float64(coordWall.Nanoseconds()) * float64(res.CoordWorkers))
	}
	res.CoordVerdictMatch = true
	for _, cr := range coordResults {
		if cr == nil || cr.Passed != serial.Passed || cr.Replay != serial.Replay {
			res.CoordVerdictMatch = false
		}
	}
	if !res.CoordVerdictMatch {
		return nil, fmt.Errorf("auditbench: coordinator verdicts diverged from serial")
	}

	// --- journaled coordinator: crash-resume and WAL overhead ---
	jroot, err := os.MkdirTemp("", "auditbench-journal-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(jroot)
	coordRun := func(j *audit.Journal, workerAddrs []string) (time.Duration, *audit.Result, audit.FleetStats, error) {
		c := audit.NewCoordinator(audit.CoordinatorConfig{
			Pipeline: 2, JobTimeout: 2 * time.Minute, DisableLocalFallback: true,
			HedgeAfter: -1, Journal: j,
		})
		defer c.Close()
		for _, a := range workerAddrs {
			c.AddWorker(a)
		}
		var r *audit.Result
		var rerr error
		wall := stopwatch(func() {
			r, _, rerr = c.Audit(distAuditor, target.Node(), uint32(target3.Index()), entries3, auths3,
				audit.DistOptions{EngineOptions: audit.EngineOptions{Materialize: materialize}})
		})
		return wall, r, c.Stats(), rerr
	}

	// Overhead: one uninterrupted run each way over the same fleet; the
	// journaled run's WAL lands on a fresh directory and tombstones on
	// completion, so both runs do identical replay work.
	plainWall, plainRes, _, err := coordRun(nil, addrs)
	if err != nil {
		return nil, fmt.Errorf("auditbench: un-journaled coordinator run: %w", err)
	}
	overheadJournal, err := audit.OpenJournal(filepath.Join(jroot, "overhead"))
	if err != nil {
		return nil, err
	}
	journaledWall, journaledRes, _, err := coordRun(overheadJournal, addrs)
	overheadJournal.Close()
	if err != nil {
		return nil, fmt.Errorf("auditbench: journaled coordinator run: %w", err)
	}
	res.CoordUnjournaledWallNs = plainWall.Nanoseconds()
	res.CoordJournaledWallNs = journaledWall.Nanoseconds()
	if plainWall > 0 {
		res.CoordJournalOverheadRatio = float64(journaledWall) / float64(plainWall)
	}
	if plainRes.Replay != serial.Replay || journaledRes.Replay != serial.Replay {
		return nil, fmt.Errorf("auditbench: journal-overhead runs diverged from serial")
	}

	// Crash-resume: phase 1 strands the run behind an epoch-0-silent
	// verdict filter, killed once the journal holds KillAfter durable
	// verdicts; phase 2 resumes it over the honest fleet.
	res.CoordResumeKillAfter = 2
	crashDir := filepath.Join(jroot, "crash")
	crashJournal, err := audit.OpenJournal(crashDir)
	if err != nil {
		return nil, err
	}
	proxyL, proxyAddr, err := audit.StartVerdictFilterProxy(addrs[0], func(v *wire.AuditVerdict) bool {
		return v.Index != 0
	})
	if err != nil {
		return nil, err
	}
	victim := audit.NewCoordinator(audit.CoordinatorConfig{
		Pipeline: 2, JobTimeout: 2 * time.Minute, DisableLocalFallback: true,
		HedgeAfter: -1, Journal: crashJournal,
	})
	victim.AddWorker(proxyAddr)
	victimDone := make(chan error, 1)
	go func() {
		_, _, verr := victim.Audit(distAuditor, target.Node(), uint32(target3.Index()), entries3, auths3,
			audit.DistOptions{EngineOptions: audit.EngineOptions{Materialize: materialize}})
		victimDone <- verr
	}()
	killDeadline := time.Now().Add(60 * time.Second)
	for {
		_, verdicts, ierr := audit.InspectJournal(crashDir)
		if ierr == nil && verdicts >= res.CoordResumeKillAfter {
			break
		}
		if time.Now().After(killDeadline) {
			return nil, fmt.Errorf("auditbench: journal never reached %d durable verdicts", res.CoordResumeKillAfter)
		}
		time.Sleep(time.Millisecond)
	}
	victim.Kill()
	<-victimDone // stranded audit fails with ErrCoordinatorKilled, by design
	crashJournal.Close()
	proxyL.Close()

	resumeJournal, err := audit.OpenJournal(crashDir)
	if err != nil {
		return nil, err
	}
	_, resumeRes, resumeStats, err := coordRun(resumeJournal, addrs)
	resumeJournal.Close()
	if err != nil {
		return nil, fmt.Errorf("auditbench: resumed coordinator run: %w", err)
	}
	res.CoordResumeRunsResumed = resumeStats.RunsResumed
	res.CoordResumeEpochsSkipped = resumeStats.EpochsSkippedDurable
	res.CoordJournalBytes = resumeStats.JournalBytes
	res.CoordResumeVerdictMatch = resumeRes.Passed == serial.Passed && resumeRes.Replay == serial.Replay
	if !res.CoordResumeVerdictMatch {
		return nil, fmt.Errorf("auditbench: resumed verdict diverged from serial")
	}

	// --- delta-shipped dispatch over the same loopback fleet ---
	// A denser-snapshot recording of the same match (one epoch per
	// GameNs/48 instead of /8) so each worker connection sees a chain of
	// consecutive epochs; after the first full state per connection every
	// job ships only dirty pages plus a Merkle fold proof. The identical
	// audit with full-state jobs is the bytes baseline.
	ds, err := game.NewScenario(game.ScenarioConfig{
		Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
		Seed: 1234, SnapshotEveryNs: scale.GameNs / 48, FakeSignatures: true,
		AuditDisableFusion: opts.DisableFusion,
	})
	if err != nil {
		return nil, err
	}
	ds.Run(scale.GameNs)
	dNode := ds.Player(1).Node()
	dSerial, err := ds.AuditNode(dNode)
	if err != nil {
		return nil, err
	}
	if !dSerial.Passed {
		return nil, fmt.Errorf("auditbench: delta-scenario serial audit failed: %v", dSerial.Fault)
	}
	dTarget, dAuths, deltaAuditor, err := ds.AuditInputs(dNode)
	if err != nil {
		return nil, err
	}
	dEntries := dTarget.Log.Entries()
	dOpts := audit.EngineOptions{
		Workers:     res.DistWorkers,
		Materialize: func(k uint32) (*snapshot.Restored, error) { return dTarget.Snaps.Materialize(int(k)) },
		DeltaSource: func(k uint32) (*snapshot.Delta, error) { return dTarget.Snaps.Delta(int(k)) },
	}
	var fullRes *audit.Result
	var fullStats audit.DistStats
	if fullRes, fullStats, err = deltaAuditor.AuditFullDist(dNode, uint32(dTarget.Index()), dEntries, dAuths,
		audit.DistOptions{
			Backend:       &audit.TCPBackend{Addrs: addrs, JobTimeout: 2 * time.Minute},
			EngineOptions: dOpts,
		}); err != nil {
		return nil, fmt.Errorf("auditbench: full-state dist audit: %w", err)
	}
	if !fullRes.Passed {
		return nil, fmt.Errorf("auditbench: full-state dist audit failed: %v", fullRes.Fault)
	}
	dOpts.DeltaJobs = true
	var deltaRes *audit.Result
	var deltaStats audit.DistStats
	deltaWall := stopwatch(func() {
		deltaRes, deltaStats, err = deltaAuditor.AuditFullDist(dNode, uint32(dTarget.Index()), dEntries, dAuths,
			audit.DistOptions{
				Backend:       &audit.TCPBackend{Addrs: addrs, JobTimeout: 2 * time.Minute},
				EngineOptions: dOpts,
			})
	})
	if err != nil {
		return nil, fmt.Errorf("auditbench: delta dist audit: %w", err)
	}
	if !deltaRes.Passed {
		return nil, fmt.Errorf("auditbench: delta dist audit failed: %v", deltaRes.Fault)
	}
	res.DeltaDistEpochs = deltaStats.Epochs
	res.DeltaJobBytesFull = fullStats.WireBytesFull
	res.DeltaJobBytes = deltaStats.WireBytesFull + deltaStats.WireBytesDelta
	if res.DeltaJobBytes > 0 {
		res.DeltaBytesReduction = float64(res.DeltaJobBytesFull) / float64(res.DeltaJobBytes)
	}
	res.DeltaJobsShipped = deltaStats.DeltaJobsShipped
	res.DeltaFallbacks = deltaStats.DeltaFallbacks
	res.DeltaDistWallNs = deltaWall.Nanoseconds()
	res.DeltaVerdictMatch = deltaRes.Passed == dSerial.Passed && deltaRes.Replay == dSerial.Replay &&
		deltaRes.Syntactic == dSerial.Syntactic

	// Fold-verify wall: reconstruct and check the entire snapshot chain
	// from deltas alone, the way a stateless worker bootstraps a start
	// state it was never shipped.
	foldState, err := dTarget.Snaps.Materialize(0)
	if err != nil {
		return nil, err
	}
	res.DeltaFoldedSnapshots = dTarget.Snaps.Count() - 1
	foldWall := stopwatch(func() {
		for k := 1; k < dTarget.Snaps.Count(); k++ {
			d, derr := dTarget.Snaps.Delta(k)
			if derr != nil {
				err = derr
				return
			}
			if foldState, err = snapshot.ApplyDelta(foldState, d); err != nil {
				return
			}
		}
	})
	if err != nil {
		return nil, fmt.Errorf("auditbench: delta fold chain: %w", err)
	}
	res.DeltaFoldVerifyWallNs = foldWall.Nanoseconds()

	// --- spot-checking every segment, serial vs parallel ---
	db, err := dbapp.NewScenario(dbapp.ScenarioConfig{
		Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(), Seed: 17,
		SnapshotEveryNs: scale.DBSnapshotNs, FakeSignatures: true,
	})
	if err != nil {
		return nil, err
	}
	db.Run(scale.DBNs)
	dbAuths, err := db.ServerAuths()
	if err != nil {
		return nil, err
	}
	src := &audit.MonitorSource{
		Node: "db-server", NodeIdx: 0,
		Entries: db.Server.Log.Entries(), Auths: dbAuths,
		Materialize: func(k int) (*snapshot.Restored, error) { return db.Server.Snaps.Materialize(k) },
	}
	da := db.Auditor()
	pts, err := src.Segments()
	if err != nil {
		return nil, err
	}
	res.SpotSegments = len(pts) - 1
	// Record the fan-out actually used (SpotCheckParallel caps at the
	// number of selected chunks), so the JSON names true conditions.
	res.SpotWorkers = runtime.NumCPU()
	if res.SpotWorkers > res.SpotSegments {
		res.SpotWorkers = res.SpotSegments
	}
	all := audit.RecentFirst{K: res.SpotSegments}
	var spot *audit.SpotCheckOutcome
	wall := stopwatch(func() {
		spot, err = da.SpotCheckParallel(src, all, 1)
	})
	if err != nil {
		return nil, err
	}
	if spot.FaultFound {
		return nil, fmt.Errorf("auditbench: honest spot check faulted: %v", spot.FirstFault)
	}
	res.SpotSerialWallNs = wall.Nanoseconds()
	wall = stopwatch(func() {
		spot, err = da.SpotCheckParallel(src, all, res.SpotWorkers)
	})
	if err != nil {
		return nil, err
	}
	if spot.FaultFound {
		return nil, fmt.Errorf("auditbench: honest parallel spot check faulted: %v", spot.FirstFault)
	}
	res.SpotParallelWallNs = wall.Nanoseconds()

	// --- Merkle snapshot-root throughput ---
	res.MerkleBytes = 4 << 20
	mem := make([]byte, res.MerkleBytes)
	for i := range mem {
		mem[i] = byte(uint32(i) * 2654435761)
	}
	res.MerkleWorkers = runtime.NumCPU()
	res.MerkleSerialGBps = merkleGBps(mem, 1)
	res.MerkleParallelGBps = merkleGBps(mem, res.MerkleWorkers)

	// --- incremental vs full per-snapshot verification ---
	// A replay verifying a snapshot entry either rehashes the whole state
	// (the pre-live-tree behavior) or folds only the pages dirtied since the
	// previous entry. Both are measured serially: the fold is what each
	// epoch's replica pays inline, and a fixed dirty count keeps the row
	// comparable across runs.
	res.IncVerifyStatePages = res.MerkleBytes / vm.PageSize
	res.IncVerifyDirtyPages = 16
	dirty := make([]int, res.IncVerifyDirtyPages)
	for i := range dirty {
		dirty[i] = i * res.IncVerifyStatePages / res.IncVerifyDirtyPages
	}
	fullSH := snapshot.StateHasher{Workers: 1}
	res.MerkleFullVerifyNs = bestNsPerOp(3, 1, func() {
		fullSH.RootOfState(mem, nil, nil)
	})
	incSH := snapshot.LiveStateHasher{Workers: 1}
	incSH.Seed(mem, nil, nil)
	res.MerkleIncVerifyNs = bestNsPerOp(3, 200, func() {
		if _, ferr := incSH.Fold(mem, dirty, nil, nil); ferr != nil {
			panic(ferr)
		}
	})
	if res.MerkleIncVerifyNs > 0 {
		res.MerkleIncSpeedup = float64(res.MerkleFullVerifyNs) / float64(res.MerkleIncVerifyNs)
		res.MerkleIncVerifiesPerSec = 1e9 / float64(res.MerkleIncVerifyNs)
	}
	if res.MerkleFullVerifyNs > 0 {
		res.MerkleFullVerifiesPerSec = 1e9 / float64(res.MerkleFullVerifyNs)
	}

	// --- RSA verification rate ---
	res.VerifyKeyBits = sig.DefaultKeyBits
	signer, err := sig.GenerateRSA("auditbench", sig.DefaultKeyBits, "auditbench")
	if err != nil {
		return nil, err
	}
	msg := make([]byte, 64)
	signature := signer.Sign(msg)
	verifier := signer.Public()
	const verifyReps = 400
	vwall := stopwatch(func() {
		for i := 0; i < verifyReps; i++ {
			if !verifier.Verify(msg, signature) {
				panic("auditbench: verification failed")
			}
		}
	})
	if sec := vwall.Seconds(); sec > 0 {
		res.VerifyOpsPerSec = verifyReps / sec
	}
	return res, nil
}

// merkleGBps times StateHasher.RootOfState over mem at the given fan-out,
// taking the best of a few repetitions.
func merkleGBps(mem []byte, workers int) float64 {
	sh := snapshot.StateHasher{Workers: workers}
	best := time.Duration(1<<63 - 1)
	for rep := 0; rep < 3; rep++ {
		d := stopwatch(func() {
			sh.RootOfState(mem, nil, nil)
		})
		if d < best {
			best = d
		}
	}
	if best <= 0 {
		return 0
	}
	return float64(len(mem)) / best.Seconds() / 1e9
}

// bestNsPerOp times loops of fn (opsPerRep calls per repetition, best of
// reps) and returns the per-call nanoseconds. Cheap operations get batched
// into one stopwatch window so timer granularity does not swamp them.
func bestNsPerOp(reps, opsPerRep int, fn func()) int64 {
	best := time.Duration(1<<63 - 1)
	for rep := 0; rep < reps; rep++ {
		d := stopwatch(func() {
			for i := 0; i < opsPerRep; i++ {
				fn()
			}
		})
		if d < best {
			best = d
		}
	}
	if best <= 0 {
		return 0
	}
	return best.Nanoseconds() / int64(opsPerRep)
}

// Table renders the audit-throughput experiment.
func (r *AuditBenchResult) Table() *metrics.Table {
	t := metrics.NewTable("Audit engine throughput (serial vs parallel)",
		"metric", "value", "notes")
	t.Row("cpus", r.CPUs, "")
	t.Row("serial replay", time.Duration(r.SerialWallNs).String(),
		fmt.Sprintf("%d entries, %.1f entries/s, %.1f Minstr/s", r.LogEntries, r.SerialEntriesPerSec, r.SerialMInstrPerSec))
	for _, row := range r.Workers {
		t.Row(fmt.Sprintf("parallel replay (%d workers)", row.Workers),
			time.Duration(row.WallNs).String(),
			fmt.Sprintf("%.2fx, %.1f Minstr/s, verdict match %v", row.Speedup, row.MInstrPerSec, row.VerdictMatch))
	}
	t.Row("serial replay, no predecode", time.Duration(r.NoPredecodeWallNs).String(),
		fmt.Sprintf("predecode speedup %.2fx, verdict match %v", r.PredecodeSpeedup, r.PredecodeVerdictMatch))
	t.Row("serial replay, no fusion", time.Duration(r.NoFusionWallNs).String(),
		fmt.Sprintf("replay fusion speedup %.2fx, %d fused pairs, %d quads, %.3f dispatches/instr, verdict match %v",
			r.FusionSpeedup, r.FusedPairs, r.FusedQuads, r.DispatchesPerInstr, r.FusionVerdictMatch))
	t.Row("materialized pipeline", time.Duration(r.MaterializedWallNs).String(),
		fmt.Sprintf("decompress+rechain+audit, %d workers", r.StreamWorkers))
	t.Row("streaming pipeline", time.Duration(r.StreamWallNs).String(),
		fmt.Sprintf("%.2fx, window %d, peak %d resident, %d epochs, verdict match %v",
			r.StreamSpeedup, r.StreamWindow, r.StreamPeakResident, r.StreamEpochs, r.StreamVerdictMatch))
	t.Row("distributed pipeline", time.Duration(r.DistWallNs).String(),
		fmt.Sprintf("%d TCP workers, %d epochs, %.2fx local wall, %d KiB shipped, %d re-dispatched, merge %v, verdict match %v",
			r.DistWorkers, r.DistEpochs, r.DistOverheadRatio, r.DistJobBytes>>10, r.DistRedispatches,
			time.Duration(r.DistMergeWallNs), r.DistVerdictMatch))
	t.Row("coordinator service", time.Duration(r.CoordWallNs).String(),
		fmt.Sprintf("%d workers, %d concurrent audits, %d epochs, %.1f epochs/s, utilization %.2f, %d retries, verdict match %v",
			r.CoordWorkers, r.CoordRuns, r.CoordEpochsDone, r.CoordEpochsPerSec,
			r.CoordFleetUtilization, r.CoordRetries, r.CoordVerdictMatch))
	t.Row("journaled coordinator", time.Duration(r.CoordJournaledWallNs).String(),
		fmt.Sprintf("%.2fx un-journaled wall, %d WAL bytes", r.CoordJournalOverheadRatio, r.CoordJournalBytes))
	t.Row("coordinator crash-resume", fmt.Sprintf("killed after %d verdicts", r.CoordResumeKillAfter),
		fmt.Sprintf("%d runs resumed, %d epochs emitted from journal, verdict match %v",
			r.CoordResumeRunsResumed, r.CoordResumeEpochsSkipped, r.CoordResumeVerdictMatch))
	t.Row("delta-shipped dispatch", time.Duration(r.DeltaDistWallNs).String(),
		fmt.Sprintf("%d epochs, %d KiB shipped vs %d KiB full-state (%.1fx smaller), %d delta jobs, %d fallbacks, verdict match %v",
			r.DeltaDistEpochs, r.DeltaJobBytes>>10, r.DeltaJobBytesFull>>10, r.DeltaBytesReduction,
			r.DeltaJobsShipped, r.DeltaFallbacks, r.DeltaVerdictMatch))
	t.Row("delta fold-verify chain", time.Duration(r.DeltaFoldVerifyWallNs).String(),
		fmt.Sprintf("reconstruct %d snapshots from proofs alone", r.DeltaFoldedSnapshots))
	t.Row("spot check serial", time.Duration(r.SpotSerialWallNs).String(),
		fmt.Sprintf("%d segments", r.SpotSegments))
	t.Row("spot check parallel", time.Duration(r.SpotParallelWallNs).String(),
		fmt.Sprintf("%d workers", r.SpotWorkers))
	t.Row("merkle root serial", fmt.Sprintf("%.2f GB/s", r.MerkleSerialGBps),
		fmt.Sprintf("%d MiB state", r.MerkleBytes>>20))
	t.Row("merkle root parallel", fmt.Sprintf("%.2f GB/s", r.MerkleParallelGBps),
		fmt.Sprintf("%d workers", r.MerkleWorkers))
	t.Row("snapshot verify full", time.Duration(r.MerkleFullVerifyNs).String(),
		fmt.Sprintf("rehash all %d pages", r.IncVerifyStatePages))
	t.Row("snapshot verify incremental", time.Duration(r.MerkleIncVerifyNs).String(),
		fmt.Sprintf("%.0fx, fold %d dirty pages, %.0f verifies/s",
			r.MerkleIncSpeedup, r.IncVerifyDirtyPages, r.MerkleIncVerifiesPerSec))
	t.Row("rsa verify", fmt.Sprintf("%.0f ops/s", r.VerifyOpsPerSec),
		fmt.Sprintf("%d-bit keys", r.VerifyKeyBits))
	return t
}
