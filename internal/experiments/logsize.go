package experiments

import (
	"repro/internal/avmm"
	"repro/internal/game"
	"repro/internal/logcomp"
	"repro/internal/metrics"
	"repro/internal/tevlog"
)

// Fig3Point is one sample of log growth over time.
type Fig3Point struct {
	MinuteNs   uint64
	AVMMBytes  int
	VMwareEqiv int
}

// Fig3Result reproduces Figure 3: AVMM log growth during a match versus an
// equivalent plain replay (VMware-style) log.
type Fig3Result struct {
	Points     []Fig3Point // player 1's machine, sampled periodically
	AVMMRate   float64     // MB/minute steady state
	VMwareRate float64
}

// RunFig3 plays a match in the full configuration, sampling log sizes.
func RunFig3(scale Scale) (*Fig3Result, error) {
	cfg := game.ScenarioConfig{
		Players: 3, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
		Seed: 77, FakeSignatures: true,
	}
	s, err := game.NewScenario(cfg)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{}
	sampleEvery := scale.GameNs / 12
	if sampleEvery == 0 {
		sampleEvery = 1
	}
	var now uint64
	for now < scale.GameNs {
		now += sampleEvery
		s.Run(now)
		p := s.Player(1)
		res.Points = append(res.Points, Fig3Point{
			MinuteNs: now, AVMMBytes: p.TotalLogBytes(), VMwareEqiv: p.VMwareEquivalentBytes(),
		})
	}
	steady := scale.GameNs - scale.WarmupNs
	p := s.Player(1)
	warmIdx := 0
	for i, pt := range res.Points {
		if pt.MinuteNs >= scale.WarmupNs {
			warmIdx = i
			break
		}
	}
	base := res.Points[warmIdx]
	res.AVMMRate = metrics.MBPerMinute(p.TotalLogBytes()-base.AVMMBytes, steady)
	res.VMwareRate = metrics.MBPerMinute(p.VMwareEquivalentBytes()-base.VMwareEqiv, steady)
	return res, nil
}

// Table renders the growth series.
func (r *Fig3Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 3: log growth during the match", "t (virtual s)", "AVMM log (KB)", "equivalent VMware log (KB)")
	for _, pt := range r.Points {
		t.Row(pt.MinuteNs/1e9, pt.AVMMBytes/1024, pt.VMwareEqiv/1024)
	}
	t.Row("steady rate", r.AVMMRate, r.VMwareRate)
	return t
}

// Fig4Result reproduces Figure 4: average log growth by content class,
// before and after compression.
type Fig4Result struct {
	DurationNs uint64
	// Class byte totals for the AVMM log (player 1).
	TimeTracker, MAC, Other, Tamper int
	// Compressed sizes: general-purpose (flate) alone, and the two-stage
	// VMM-specific + flate compressor.
	RawBytes       int
	FlateBytes     int
	ColumnarBytes  int
	RatePerClass   map[string]float64 // MB/min
	TotalRate      float64
	CompressedRate float64
}

// RunFig4 measures log composition and compression on the full
// configuration.
func RunFig4(scale Scale) (*Fig4Result, error) {
	s, err := runGame(avmm.ModeAVMMRSA, scale, nil)
	if err != nil {
		return nil, err
	}
	p := s.Player(1)
	res := &Fig4Result{
		DurationNs:  scale.GameNs,
		TimeTracker: p.ClassBytes(avmm.ClassTimeTracker),
		MAC:         p.ClassBytes(avmm.ClassMAC),
		Other:       p.ClassBytes(avmm.ClassOther),
		Tamper:      p.ClassBytes(avmm.ClassTamper),
	}
	entries := p.Log.Entries()
	raw := tevlog.MarshalSegment(entries)
	res.RawBytes = len(raw)
	res.FlateBytes = len(logcomp.Flate(raw))
	res.ColumnarBytes = len(logcomp.CompressEntries(entries))
	res.RatePerClass = map[string]float64{
		"TimeTracker":   metrics.MBPerMinute(res.TimeTracker, scale.GameNs),
		"MAC":           metrics.MBPerMinute(res.MAC, scale.GameNs),
		"Other":         metrics.MBPerMinute(res.Other, scale.GameNs),
		"TamperEvident": metrics.MBPerMinute(res.Tamper, scale.GameNs),
	}
	res.TotalRate = metrics.MBPerMinute(res.RawBytes, scale.GameNs)
	res.CompressedRate = metrics.MBPerMinute(res.ColumnarBytes, scale.GameNs)
	return res, nil
}

// Table renders the composition bars.
func (r *Fig4Result) Table() *metrics.Table {
	total := r.TimeTracker + r.MAC + r.Other + r.Tamper
	pct := func(v int) float64 {
		if total == 0 {
			return 0
		}
		return float64(v) * 100 / float64(total)
	}
	t := metrics.NewTable("Figure 4: average log growth by content", "class", "bytes", "% of log", "MB/min")
	t.Row("TimeTracker (replay timing)", r.TimeTracker, pct(r.TimeTracker), r.RatePerClass["TimeTracker"])
	t.Row("MAC layer (packets)", r.MAC, pct(r.MAC), r.RatePerClass["MAC"])
	t.Row("Other (inputs, snapshots)", r.Other, pct(r.Other), r.RatePerClass["Other"])
	t.Row("Tamper-evident logging", r.Tamper, pct(r.Tamper), r.RatePerClass["TamperEvident"])
	t.Row("Total (raw)", r.RawBytes, 100.0, r.TotalRate)
	t.Row("After flate alone", r.FlateBytes, pct(r.FlateBytes), metrics.MBPerMinute(r.FlateBytes, r.DurationNs))
	t.Row("After VMM-specific + flate", r.ColumnarBytes, pct(r.ColumnarBytes), r.CompressedRate)
	return t
}
