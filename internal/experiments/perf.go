package experiments

import (
	"fmt"

	"repro/internal/avmm"
	"repro/internal/game"
	"repro/internal/metrics"
)

// Fig7Row is one configuration's frame rates.
type Fig7Row struct {
	Mode avmm.Mode
	// FPS per player machine (the paper reports three machines).
	FPS []float64
	Avg float64
}

// Fig7Result reproduces Figure 7: frame rate per configuration.
type Fig7Result struct {
	Rows []Fig7Row
	// DropPct is the bare→full-AVMM frame rate drop (the paper's 13%).
	DropPct float64
	// RecordingDropPct isolates the recording cost (the paper's 11%).
	RecordingDropPct float64
}

// RunFig7 measures per-player steady-state frame rates in all five
// configurations.
func RunFig7(scale Scale) (*Fig7Result, error) {
	res := &Fig7Result{}
	for _, mode := range AllModes {
		fps, _, err := runGameFPS(mode, scale, nil)
		if err != nil {
			return nil, fmt.Errorf("fig7 %v: %w", mode, err)
		}
		res.Rows = append(res.Rows, Fig7Row{Mode: mode, FPS: fps, Avg: metrics.Mean(fps)})
	}
	bare := res.Rows[0].Avg
	norec := res.Rows[1].Avg
	rec := res.Rows[2].Avg
	full := res.Rows[len(res.Rows)-1].Avg
	if bare > 0 {
		res.DropPct = (bare - full) / bare * 100
		res.RecordingDropPct = (norec - rec) / bare * 100
	}
	return res, nil
}

// Table renders Figure 7.
func (r *Fig7Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 7: average frame rate", "config", "player1", "player2", "player3", "avg")
	for _, row := range r.Rows {
		cells := []interface{}{row.Mode.String()}
		for _, f := range row.FPS {
			cells = append(cells, f)
		}
		cells = append(cells, row.Avg)
		t.Row(cells...)
	}
	t.Row("bare → AVMM drop (%)", r.DropPct, "", "", "")
	t.Row("recording share (%)", r.RecordingDropPct, "", "", "")
	return t
}

// Fig6Row is the per-hyperthread utilization for one configuration.
type Fig6Row struct {
	Mode avmm.Mode
	// HT[0] is the logging-daemon hyperthread (measured: charged monitor
	// overhead over elapsed time); HT[4] is its lightly-loaded hypertwin
	// (modeled constant); the game's single render thread migrates over
	// the remaining six (measured guest busy fraction, spread evenly).
	HT  [8]float64
	Avg float64
}

// Fig6Result reproduces Figure 6: average CPU utilization across the eight
// hyperthreads. The daemon-thread utilization is measured from charged
// monitor overhead; the placement model (one busy game thread over six
// hyperthreads, idle hypertwin) follows §6.9's pinning.
type Fig6Result struct {
	Rows []Fig6Row
}

// RunFig6 derives the utilization table from instrumented game runs.
func RunFig6(scale Scale) (*Fig6Result, error) {
	res := &Fig6Result{}
	for _, mode := range AllModes {
		_, s, err := runGameFPS(mode, scale, nil)
		if err != nil {
			return nil, fmt.Errorf("fig6 %v: %w", mode, err)
		}
		p := s.Player(1)
		elapsed := p.Machine.VTimeNs()
		var row Fig6Row
		row.Mode = mode
		if elapsed > 0 {
			row.HT[0] = float64(p.DaemonBusyNs) / float64(elapsed)
		}
		// Guest busy fraction: instruction time over elapsed virtual time.
		busy := 0.0
		if elapsed > 0 {
			busy = float64(p.Machine.ICount*p.Machine.NsPerInstr) / float64(elapsed)
		}
		for _, ht := range []int{1, 2, 3, 5, 6, 7} {
			row.HT[ht] = busy / 6
		}
		row.HT[4] = 0.01 // kernel IRQ handling on the lightly-loaded hypertwin
		sum := 0.0
		for _, u := range row.HT {
			sum += u
		}
		row.Avg = sum / 8
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders Figure 6.
func (r *Fig6Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 6: CPU utilization per hyperthread",
		"config", "HT0 (daemon)", "HT1-3,5-7 (game, each)", "HT4", "average")
	for _, row := range r.Rows {
		t.Row(row.Mode.String(), row.HT[0]*100, row.HT[1]*100, row.HT[4]*100, row.Avg*100)
	}
	return t
}

// Sec67Result reproduces the §6.7 traffic comparison: IP-level traffic of
// the machine hosting the game, bare versus full AVMM.
type Sec67Result struct {
	DurationNs uint64
	// Kbps per mode for the server machine and the average player machine.
	Rows []Sec67Row
}

// Sec67Row is one configuration's traffic.
type Sec67Row struct {
	Mode       avmm.Mode
	ServerKbps float64
	PlayerKbps float64
}

// RunSec67 measures sent IP bytes per machine.
func RunSec67(scale Scale) (*Sec67Result, error) {
	res := &Sec67Result{DurationNs: scale.GameNs}
	for _, mode := range []avmm.Mode{avmm.ModeBareHW, avmm.ModeAVMMRSA} {
		s, err := runGame(mode, scale, nil)
		if err != nil {
			return nil, err
		}
		server := s.Net.NodeStats(0).BytesSent
		player := 0
		for i := 1; i <= 3; i++ {
			player += s.Net.NodeStats(i).BytesSent
		}
		res.Rows = append(res.Rows, Sec67Row{
			Mode:       mode,
			ServerKbps: metrics.Kbps(server, scale.GameNs),
			PlayerKbps: metrics.Kbps(player/3, scale.GameNs),
		})
	}
	return res, nil
}

// Table renders §6.7.
func (r *Sec67Result) Table() *metrics.Table {
	t := metrics.NewTable("Section 6.7: IP-level traffic", "config", "game host (kbps)", "player avg (kbps)")
	for _, row := range r.Rows {
		t.Row(row.Mode.String(), row.ServerKbps, row.PlayerKbps)
	}
	return t
}

// Sec65Result reproduces §6.5: the frame-rate cap's busy-wait clock reads
// blow up the log, and the exponential clock-read delay recovers it.
type Sec65Result struct {
	// MB/min log growth and fps for the four runs.
	UncappedRate, CappedRate, CappedOptRate float64
	UncappedFPS, CappedFPS, CappedOptFPS    float64
	UncappedOptRate, UncappedOptFPS         float64
	BlowupFactor                            float64 // capped / uncapped rate
	OptRecovery                             float64 // cappedOpt / uncapped rate
}

// RunSec65 plays the four variants.
func RunSec65(scale Scale) (*Sec65Result, error) {
	type variant struct {
		cap, opt bool
		rate     *float64
		fps      *float64
	}
	res := &Sec65Result{}
	variants := []variant{
		{false, false, &res.UncappedRate, &res.UncappedFPS},
		{true, false, &res.CappedRate, &res.CappedFPS},
		{true, true, &res.CappedOptRate, &res.CappedOptFPS},
		{false, true, &res.UncappedOptRate, &res.UncappedOptFPS},
	}
	for _, v := range variants {
		v := v
		fps, s, err := runGameFPS(avmm.ModeAVMMRSA, scale, func(cfg *game.ScenarioConfig) {
			cfg.FrameCap = v.cap
			cfg.ClockDelayOpt = v.opt
		})
		if err != nil {
			return nil, err
		}
		*v.fps = metrics.Mean(fps)
		*v.rate = metrics.MBPerMinute(s.Player(1).TotalLogBytes(), scale.GameNs)
	}
	if res.UncappedRate > 0 {
		res.BlowupFactor = res.CappedRate / res.UncappedRate
		res.OptRecovery = res.CappedOptRate / res.UncappedRate
	}
	return res, nil
}

// Table renders §6.5.
func (r *Sec65Result) Table() *metrics.Table {
	t := metrics.NewTable("Section 6.5: frame cap and the clock-read delay optimization",
		"variant", "log MB/min", "fps")
	t.Row("uncapped", r.UncappedRate, r.UncappedFPS)
	t.Row("capped (72 fps)", r.CappedRate, r.CappedFPS)
	t.Row("capped + clock-delay opt", r.CappedOptRate, r.CappedOptFPS)
	t.Row("uncapped + clock-delay opt", r.UncappedOptRate, r.UncappedOptFPS)
	t.Row("cap blowup factor", r.BlowupFactor, "")
	t.Row("opt recovery (vs uncapped)", r.OptRecovery, "")
	return t
}
