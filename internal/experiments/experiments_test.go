package experiments

import (
	"testing"

	"repro/internal/avmm"
)

// tinyScale keeps unit tests fast; benches use QuickScale/FullScale.
var tinyScale = Scale{
	GameNs:       12_000_000_000,
	WarmupNs:     4_000_000_000,
	DBNs:         120_000_000_000,
	DBSnapshotNs: 10_000_000_000,
	Pings:        25,
	CheatMatchNs: 6_000_000_000,
}

func TestFig7Shape(t *testing.T) {
	res, err := RunFig7(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table().String())
	fps := map[avmm.Mode]float64{}
	for _, row := range res.Rows {
		fps[row.Mode] = row.Avg
	}
	// Shape: bare fastest; every added layer costs frames; full AVMM within
	// the paper's ballpark (−10% to −20% of bare).
	if !(fps[avmm.ModeBareHW] >= fps[avmm.ModeVMwareNoRec] &&
		fps[avmm.ModeVMwareNoRec] >= fps[avmm.ModeVMwareRec] &&
		fps[avmm.ModeVMwareRec] >= fps[avmm.ModeAVMMNoSig] &&
		fps[avmm.ModeAVMMNoSig] >= fps[avmm.ModeAVMMRSA]) {
		t.Errorf("frame rates not monotone across configurations: %v", fps)
	}
	if res.DropPct < 5 || res.DropPct > 30 {
		t.Errorf("bare→AVMM drop = %.1f%%, want 5-30%% (paper: 13%%)", res.DropPct)
	}
	if fps[avmm.ModeBareHW] < 120 || fps[avmm.ModeBareHW] > 200 {
		t.Errorf("bare frame rate %.1f outside calibration target 120-200 (paper: 158)", fps[avmm.ModeBareHW])
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := RunFig5(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table().String())
	med := map[avmm.Mode]float64{}
	for _, row := range res.Rows {
		med[row.Mode] = row.MedianUs
	}
	if !(med[avmm.ModeBareHW] < med[avmm.ModeVMwareNoRec] &&
		med[avmm.ModeVMwareNoRec] < med[avmm.ModeVMwareRec] &&
		med[avmm.ModeVMwareRec] < med[avmm.ModeAVMMNoSig] &&
		med[avmm.ModeAVMMNoSig] < med[avmm.ModeAVMMRSA]) {
		t.Errorf("RTTs not monotone across configurations: %v", med)
	}
	if med[avmm.ModeAVMMRSA] < 2_000 || med[avmm.ModeAVMMRSA] > 10_000 {
		t.Errorf("full-AVMM RTT %.0f µs outside 2-10 ms ballpark (paper: ~5 ms)", med[avmm.ModeAVMMRSA])
	}
}

func TestFig3Fig4Shape(t *testing.T) {
	f3, err := RunFig3(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f3.Table().String())
	if f3.AVMMRate <= f3.VMwareRate {
		t.Errorf("AVMM log rate %.2f MB/min not above plain replay log %.2f", f3.AVMMRate, f3.VMwareRate)
	}
	last := f3.Points[len(f3.Points)-1]
	first := f3.Points[0]
	if last.AVMMBytes <= first.AVMMBytes {
		t.Error("log did not grow during the match")
	}

	f4, err := RunFig4(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f4.Table().String())
	if f4.TimeTracker == 0 || f4.MAC == 0 || f4.Tamper == 0 {
		t.Errorf("log composition has empty classes: %+v", f4)
	}
	if f4.ColumnarBytes >= f4.RawBytes {
		t.Error("VMM-specific compression did not shrink the log")
	}
	if f4.ColumnarBytes >= f4.FlateBytes {
		t.Error("columnar+flate should beat flate alone on structured logs")
	}
}

func TestSec65Shape(t *testing.T) {
	res, err := RunSec65(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table().String())
	if res.BlowupFactor < 3 {
		t.Errorf("frame cap log blowup %.1fx; expected large (paper: 18x)", res.BlowupFactor)
	}
	// The paper recovers to −2% of the uncapped rate; our coarser virtual
	// clock leaves a larger residual, but the optimization must still kill
	// the vast majority of the blowup.
	if res.OptRecovery > 2.0 {
		t.Errorf("clock-delay optimization leaves %.1fx of uncapped rate; expected <2x", res.OptRecovery)
	}
	if res.OptRecovery*3 > res.BlowupFactor {
		t.Errorf("optimization recovered too little: %.1fx of a %.1fx blowup", res.OptRecovery, res.BlowupFactor)
	}
	if res.CappedFPS > res.UncappedFPS {
		t.Error("capped fps above uncapped fps")
	}
	// The optimization may cost a few fps (paper: ~3%) but not more than a
	// quarter of the capped rate.
	if res.CappedOptFPS < res.CappedFPS*3/4 {
		t.Errorf("optimization cost too many frames: %.1f vs %.1f", res.CappedOptFPS, res.CappedFPS)
	}
}

func TestSec67Shape(t *testing.T) {
	res, err := RunSec67(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table().String())
	bare := res.Rows[0]
	full := res.Rows[1]
	if full.ServerKbps < 3*bare.ServerKbps {
		t.Errorf("AVMM traffic %.1f kbps not well above bare %.1f kbps (paper: ~10x)", full.ServerKbps, bare.ServerKbps)
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := RunFig9(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table().String())
	if len(res.Rows) < 3 {
		t.Fatalf("only %d chunk sizes audited", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].TimePct < res.Rows[i-1].TimePct {
			t.Errorf("spot-check time not increasing with k: %+v", res.Rows)
		}
		if res.Rows[i].DataPct < res.Rows[i-1].DataPct {
			t.Errorf("spot-check data not increasing with k: %+v", res.Rows)
		}
		if !res.Rows[i].AllPassed {
			t.Errorf("honest chunks failed at k=%d", res.Rows[i].K)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := RunFig6(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table().String())
	for _, row := range res.Rows {
		if row.Avg < 0.05 || row.Avg > 0.35 {
			t.Errorf("%v: average utilization %.1f%% outside plausible range (paper: ~12.5%%)", row.Mode, row.Avg*100)
		}
	}
	if res.Rows[0].HT[0] != 0 {
		t.Error("bare hardware should charge no monitor overhead on HT0")
	}
	last := res.Rows[len(res.Rows)-1]
	if last.HT[0] <= res.Rows[1].HT[0] {
		t.Error("full AVMM daemon utilization should exceed plain virtualization")
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := RunFig8(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table().String())
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(res.Rows))
	}
	if !(res.Rows[0].AvgFPS > res.Rows[1].AvgFPS && res.Rows[1].AvgFPS > res.Rows[2].AvgFPS) {
		t.Errorf("fps should fall with concurrent audits: %+v", res.Rows)
	}
	for _, row := range res.Rows {
		if !row.AuditsPassed {
			t.Errorf("online audit of honest player failed (audits=%d)", row.AuditsPerMachine)
		}
	}
}

func TestTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("26 matches; skipped in -short")
	}
	res, err := RunTable1(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table().String())
	t.Log("\n" + res.DetailTable().String())
	if res.Total != 26 || res.Detectable != 26 || res.NotDetectable != 0 {
		t.Errorf("Table 1 counts off: %+v", res)
	}
	if res.AnyImpl != 4 || res.ImplSpecific != 22 {
		t.Errorf("class split off: %d any-impl / %d impl-specific, want 4/22", res.AnyImpl, res.ImplSpecific)
	}
	if !res.ExternalAimbotEvades {
		t.Error("external aimbot control was detected; it must evade (unmodified image)")
	}
	for _, row := range res.Rows {
		if !row.HonestOK {
			t.Errorf("honest player failed audit during %q match", row.Cheat.Name)
		}
	}
}

func TestAblations(t *testing.T) {
	chain, err := RunAblationChain(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + chain.Table().String())
	if chain.PerEntry < chain.Batch64 {
		t.Log("note: per-entry chaining was faster than batched; timing noise on small logs")
	}
	snaps, err := RunAblationSnapshots(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + snaps.Table().String())
	if snaps.SavingsFactor < 1 {
		t.Errorf("incremental snapshots larger than full dumps (factor %.2f)", snaps.SavingsFactor)
	}
	lms, err := RunAblationLandmarks(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + lms.Table().String())
	if lms.Events == 0 {
		t.Error("no asynchronous events in the recorded log")
	}
}

func TestSec66Pipeline(t *testing.T) {
	res, err := RunSec66(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table().String())
	if !res.Passed {
		t.Error("audit pipeline failed on an honest recording")
	}
	if res.Semantic < res.Syntactic {
		t.Log("note: semantic check faster than syntactic; tiny log")
	}
}

func TestAuditBenchShape(t *testing.T) {
	res, err := RunAuditBench(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table().String())
	if len(res.Workers) != len(auditWorkerCounts) {
		t.Fatalf("got %d ablation rows, want %d", len(res.Workers), len(auditWorkerCounts))
	}
	for _, row := range res.Workers {
		if !row.VerdictMatch {
			t.Errorf("parallel audit at %d workers diverged from the serial verdict", row.Workers)
		}
		if row.WallNs <= 0 {
			t.Errorf("no wall time recorded at %d workers", row.Workers)
		}
	}
	if res.SpotSegments < 3 {
		t.Errorf("only %d spot-check segments; increase duration", res.SpotSegments)
	}
	if res.MerkleSerialGBps <= 0 || res.MerkleParallelGBps <= 0 {
		t.Error("merkle throughput not measured")
	}
	if res.VerifyOpsPerSec <= 0 {
		t.Error("rsa verify rate not measured")
	}
}
