package experiments

import (
	"fmt"

	"repro/internal/avmm"
	"repro/internal/game"
	"repro/internal/metrics"
)

// Table1Row is one cheat's outcome.
type Table1Row struct {
	Cheat    *game.Cheat
	Detected bool
	// DetectedBy names the failing check (semantic divergence, snapshot
	// root, ...).
	DetectedBy string
	// HonestOK reports that the non-cheating player still passed.
	HonestOK bool
}

// Table1Result reproduces Table 1: detectability of the 26-cheat catalog.
type Table1Result struct {
	Rows []Table1Row
	// Counts in the paper's table layout.
	Total, Detectable, ImplSpecific, AnyImpl, NotDetectable int
	// ExternalAimbotEvades records the §5.4 control: the input-level
	// aimbot, which does not modify the image, must NOT be detected.
	ExternalAimbotEvades bool
}

// RunTable1 plays one short match per cheat (cheater = player 1) and audits
// both players, then runs the external-aimbot control.
func RunTable1(scale Scale) (*Table1Result, error) {
	res := &Table1Result{}
	for _, cheat := range game.Catalog() {
		s, err := game.NewScenario(game.ScenarioConfig{
			Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
			Seed: 2024, CheatPlayer: 1, Cheat: cheat,
			SnapshotEveryNs: scale.CheatMatchNs / 3, FakeSignatures: true,
		})
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", cheat.Name, err)
		}
		s.Run(scale.CheatMatchNs)
		cheaterRes, err := s.AuditNode("player1")
		if err != nil {
			return nil, err
		}
		honestRes, err := s.AuditNode("player2")
		if err != nil {
			return nil, err
		}
		row := Table1Row{Cheat: cheat, Detected: !cheaterRes.Passed, HonestOK: honestRes.Passed}
		if row.Detected {
			row.DetectedBy = string(cheaterRes.Fault.Check)
		}
		res.Rows = append(res.Rows, row)
	}

	res.Total = len(res.Rows)
	for _, r := range res.Rows {
		if r.Detected {
			res.Detectable++
			if r.Cheat.Class2 {
				res.AnyImpl++
			} else {
				res.ImplSpecific++
			}
		} else {
			res.NotDetectable++
		}
	}

	// Control: external (input-level) aimbot with an unmodified image.
	s, err := game.NewScenario(game.ScenarioConfig{
		Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
		Seed: 2024, ExternalAimbot: 1,
		SnapshotEveryNs: scale.CheatMatchNs / 3, FakeSignatures: true,
	})
	if err != nil {
		return nil, err
	}
	s.Run(scale.CheatMatchNs)
	ext, err := s.AuditNode("player1")
	if err != nil {
		return nil, err
	}
	res.ExternalAimbotEvades = ext.Passed
	return res, nil
}

// Table renders the paper's Table 1 rows.
func (r *Table1Result) Table() *metrics.Table {
	t := metrics.NewTable("Table 1: Detectability of fragfest cheats", "", "count")
	t.Row("Total number of cheats examined", r.Total)
	t.Row("Cheats detectable with AVMs", r.Detectable)
	t.Row("... in this specific implementation of the cheat", r.ImplSpecific)
	t.Row("... no matter how the cheat is implemented", r.AnyImpl)
	t.Row("Cheats not detectable with AVMs", r.NotDetectable)
	return t
}

// DetailTable lists per-cheat outcomes.
func (r *Table1Result) DetailTable() *metrics.Table {
	t := metrics.NewTable("Table 1 detail", "id", "cheat", "class2", "detected", "by", "honest ok")
	for _, row := range r.Rows {
		t.Row(row.Cheat.ID, row.Cheat.Name, row.Cheat.Class2, row.Detected, row.DetectedBy, row.HonestOK)
	}
	return t
}
