// Package experiments contains one driver per table and figure of the
// paper's evaluation (§6). Each driver runs the corresponding workload on
// the simulation substrate and returns the same rows/series the paper
// reports. Absolute numbers are not expected to match the authors' testbed
// (our machines are simulated); the shape — who wins, by what rough factor,
// where crossovers fall — is the reproduction target. EXPERIMENTS.md
// records paper-vs-measured for every driver.
package experiments

import (
	"time"

	"repro/internal/avmm"
	"repro/internal/game"
)

// Scale selects experiment durations. Quick keeps the full suite in
// laptop-test time; Full stretches runs for smoother numbers.
type Scale struct {
	// GameNs is the match length for rate/frame measurements.
	GameNs uint64
	// WarmupNs is excluded from steady-state windows (join phase).
	WarmupNs uint64
	// DBNs is the minisql run length for spot checking.
	DBNs uint64
	// DBSnapshotNs is the snapshot interval for the minisql run.
	DBSnapshotNs uint64
	// Pings is the ping count per configuration.
	Pings int
	// CheatMatchNs is the per-cheat match length for Table 1.
	CheatMatchNs uint64
}

// QuickScale is used by tests and the default bench run.
var QuickScale = Scale{
	GameNs:       30_000_000_000,  // 30 virtual s
	WarmupNs:     5_000_000_000,   //  5 virtual s
	DBNs:         300_000_000_000, //  5 virtual min
	DBSnapshotNs: 20_000_000_000,  // 20 virtual s → 15 segments
	Pings:        50,
	CheatMatchNs: 8_000_000_000,
}

// FullScale stretches runs closer to the paper's durations.
var FullScale = Scale{
	GameNs:       180_000_000_000, // 3 virtual min
	WarmupNs:     10_000_000_000,
	DBNs:         900_000_000_000, // 15 virtual min
	DBSnapshotNs: 60_000_000_000,  // 1 virtual min → 15 segments
	Pings:        100,
	CheatMatchNs: 12_000_000_000,
}

// AllModes lists the five evaluation configurations in paper order.
var AllModes = []avmm.Mode{
	avmm.ModeBareHW, avmm.ModeVMwareNoRec, avmm.ModeVMwareRec,
	avmm.ModeAVMMNoSig, avmm.ModeAVMMRSA,
}

// runGame plays a match in the given mode and returns the scenario.
func runGame(mode avmm.Mode, scale Scale, mutate func(*game.ScenarioConfig)) (*game.Scenario, error) {
	cfg := game.ScenarioConfig{
		Players: 3, Mode: mode, Cost: avmm.DefaultCostModel(), Seed: 1234,
		FakeSignatures: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := game.NewScenario(cfg)
	if err != nil {
		return nil, err
	}
	s.Run(scale.GameNs)
	return s, nil
}

// steadyFPS measures per-player frame rates over the steady-state window
// [warmup, end] by re-running the scenario to the warmup point first.
// Because worlds are deterministic, constructing two scenarios with the
// same config yields the same execution; we instead sample frames at
// warmup during a single run via RunAndSampleFrames.
type fpsSample struct {
	frames []uint64
	atNs   uint64
}

// runGameFPS plays a match, sampling frame counters at warmup and at the
// end, returning per-player fps over the steady window.
func runGameFPS(mode avmm.Mode, scale Scale, mutate func(*game.ScenarioConfig)) ([]float64, *game.Scenario, error) {
	cfg := game.ScenarioConfig{
		Players: 3, Mode: mode, Cost: avmm.DefaultCostModel(), Seed: 1234,
		FakeSignatures: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := game.NewScenario(cfg)
	if err != nil {
		return nil, nil, err
	}
	s.Run(scale.WarmupNs)
	base := make([]uint64, len(s.Players))
	baseT := make([]uint64, len(s.Players))
	for i, p := range s.Players {
		base[i] = p.Devs.Frames
		baseT[i] = p.Machine.VTimeNs()
	}
	s.Run(scale.GameNs)
	fps := make([]float64, len(s.Players))
	for i, p := range s.Players {
		df := p.Devs.Frames - base[i]
		dt := p.Machine.VTimeNs() - baseT[i]
		if dt > 0 {
			fps[i] = float64(df) * 1e9 / float64(dt)
		}
	}
	return fps, s, nil
}

// stopwatch measures wall time of f.
func stopwatch(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
