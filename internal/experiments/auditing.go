package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/dbapp"
	"repro/internal/game"
	"repro/internal/logcomp"
	"repro/internal/metrics"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
)

// Sec66Result reproduces §6.6: wall-clock durations of each audit pipeline
// stage on a recorded match (compress, decompress, syntactic check,
// semantic check), plus the ratio of replay time to recorded play time.
type Sec66Result struct {
	RecordedNs     uint64
	LogEntries     int
	LogBytes       int
	CompressedSize int
	Compress       time.Duration
	Decompress     time.Duration
	Syntactic      time.Duration
	Semantic       time.Duration
	ReplayedInstr  uint64
	Passed         bool
	// SemanticParallel is the semantic stage on the epoch-parallel engine
	// with ParallelWorkers workers; ParallelSpeedup is Semantic divided by
	// SemanticParallel.
	SemanticParallel time.Duration
	ParallelWorkers  int
	ParallelSpeedup  float64
	Snapshots        int
}

// RunSec66 records a match, then times the audit pipeline on the server's
// log (the paper audits the machine hosting the game). The machine takes
// periodic snapshots, so the semantic stage can also run on the
// epoch-parallel engine for comparison.
func RunSec66(scale Scale) (*Sec66Result, error) {
	s, err := runGame(avmm.ModeAVMMRSA, scale, func(cfg *game.ScenarioConfig) {
		cfg.SnapshotEveryNs = scale.GameNs / 8
	})
	if err != nil {
		return nil, err
	}
	target := s.Player(1)
	entries := target.Log.Entries()
	auths, err := s.CollectAuths(target.Node())
	if err != nil {
		return nil, err
	}
	res := &Sec66Result{
		RecordedNs: scale.GameNs,
		LogEntries: len(entries),
		LogBytes:   target.TotalLogBytes(),
	}
	var compressed []byte
	res.Compress = stopwatch(func() {
		compressed = logcomp.CompressEntries(entries)
	})
	res.CompressedSize = len(compressed)
	var decompressed []tevlog.Entry
	var decompressErr error
	res.Decompress = stopwatch(func() {
		decompressed, decompressErr = logcomp.DecompressEntries(compressed)
	})
	if decompressErr != nil {
		return nil, fmt.Errorf("sec66 decompress: %w", decompressErr)
	}
	if err := tevlog.Rechain(tevlog.Hash{}, decompressed); err != nil {
		return nil, fmt.Errorf("sec66 rechain: %w", err)
	}

	a := &audit.Auditor{
		Keys: s.Keys, RefImage: s.RefImgs[target.Node()], RNGSeed: s.RNGSeedOf(target.Index()),
		TamperEvident: true, VerifySignatures: true,
	}
	var synFault *audit.FaultReport
	res.Syntactic = stopwatch(func() {
		if err := tevlog.VerifySegment(tevlog.Hash{}, decompressed, auths, s.Keys); err != nil {
			synFault = &audit.FaultReport{Detail: err.Error()}
			return
		}
		_, synFault = audit.SyntacticCheck(target.Node(), decompressed, audit.SyntacticOptions{
			NodeIdx: uint32(target.Index()), Keys: s.Keys, VerifySignatures: true,
		})
	})
	if synFault != nil {
		return nil, fmt.Errorf("sec66 syntactic check failed: %s", synFault.Detail)
	}
	var rep *audit.Replay
	res.Semantic = stopwatch(func() {
		rep, err = audit.NewReplayFromImage(target.Node(), a.RefImage, a.RNGSeed)
		if err != nil {
			return
		}
		rep.Feed(decompressed)
		rep.Close()
		rep.Run()
	})
	if err != nil {
		return nil, err
	}
	if f := rep.Fault(); f != nil {
		return nil, fmt.Errorf("sec66 semantic check failed: %s", f.Detail)
	}
	res.ReplayedInstr = rep.Stats.Instructions
	res.Snapshots = rep.Stats.SnapshotsVerified

	// The same semantic stage on the epoch-parallel engine, pulling epoch
	// start states from the machine's snapshot store. Report the fan-out
	// actually used: the engine caps workers at the epoch count, which is
	// bounded by the number of snapshots in the log.
	res.ParallelWorkers = runtime.NumCPU()
	if res.ParallelWorkers > res.Snapshots && res.Snapshots > 0 {
		res.ParallelWorkers = res.Snapshots
	}
	popts := audit.ParallelOptions{EngineOptions: audit.EngineOptions{
		Workers:     res.ParallelWorkers,
		Materialize: func(snapIdx uint32) (*snapshot.Restored, error) { return target.Snaps.Materialize(int(snapIdx)) },
	}}
	var pfault *audit.FaultReport
	res.SemanticParallel = stopwatch(func() {
		_, pfault = a.SemanticCheckParallel(target.Node(), decompressed, popts)
	})
	if pfault != nil {
		return nil, fmt.Errorf("sec66 parallel semantic check failed: %s", pfault.Detail)
	}
	if res.SemanticParallel > 0 {
		res.ParallelSpeedup = float64(res.Semantic) / float64(res.SemanticParallel)
	}
	res.Passed = true
	return res, nil
}

// Table renders §6.6.
func (r *Sec66Result) Table() *metrics.Table {
	t := metrics.NewTable("Section 6.6: audit pipeline timing",
		"stage", "wall time", "notes")
	t.Row("compress", r.Compress.String(), fmt.Sprintf("%d → %d bytes", r.LogBytes, r.CompressedSize))
	t.Row("decompress", r.Decompress.String(), "")
	t.Row("syntactic check", r.Syntactic.String(), fmt.Sprintf("%d entries", r.LogEntries))
	t.Row("semantic check (replay)", r.Semantic.String(), fmt.Sprintf("%d instructions, %d snapshots", r.ReplayedInstr, r.Snapshots))
	t.Row("semantic check (parallel)", r.SemanticParallel.String(),
		fmt.Sprintf("%d workers, %.2fx", r.ParallelWorkers, r.ParallelSpeedup))
	t.Row("recorded play (virtual)", time.Duration(r.RecordedNs).String(), "")
	return t
}

// Fig8Row is one online-auditing configuration.
type Fig8Row struct {
	AuditsPerMachine int
	AvgFPS           float64
	MaxLagEntries    int
	AuditsPassed     bool
}

// Fig8Result reproduces Figure 8 and the §6.11 discussion: frame rate with
// 0/1/2 concurrent online audits per machine, with audit progress (lag)
// measured from real incremental replays running alongside the match.
type Fig8Result struct {
	Rows []Fig8Row
	// SlowdownFPS is the frame rate with the 5% artificial slowdown that
	// guarantees auditors keep up (§6.11).
	SlowdownFPS float64
}

// onlineAuditDriver incrementally replays a target's log while the match
// runs.
type onlineAuditDriver struct {
	target  *avmm.Monitor
	oa      *audit.OnlineAudit
	everyNs uint64
	nextNs  uint64
	maxLag  int
	failed  *audit.FaultReport
}

// Tick implements avmm.Driver.
func (d *onlineAuditDriver) Tick(_ *avmm.World, nowNs uint64) {
	if nowNs < d.nextNs || d.failed != nil {
		return
	}
	d.nextNs = nowNs + d.everyNs
	hi := uint64(d.target.Log.Len())
	if hi <= d.oa.FedTo() {
		return
	}
	entries, err := d.target.Log.SegmentView(d.oa.FedTo()+1, hi)
	if err != nil {
		return
	}
	d.oa.Feed(entries)
	if f := d.oa.Fault(); f != nil {
		d.failed = f
	}
	if lag := d.oa.LagEntries(); lag > d.maxLag {
		d.maxLag = lag
	}
}

// RunFig8 plays matches with a concurrent audits per machine, modeling CPU
// contention as a per-instruction slowdown while running the actual
// incremental replays.
func RunFig8(scale Scale) (*Fig8Result, error) {
	res := &Fig8Result{}
	for _, audits := range []int{0, 1, 2} {
		audits := audits
		// Contention model: each concurrent audit steals roughly one
		// hyperthread's worth of memory bandwidth and shared cache from the
		// game thread; calibrated to the paper's 137→104 fps for two
		// audits.
		slow := uint64(audits) * 280
		var drivers []*onlineAuditDriver
		fps, s, err := runGameFPS(avmm.ModeAVMMRSA, scale, func(cfg *game.ScenarioConfig) {
			cfg.SlowdownPerInstrNs = slow
			cfg.OnAfterBuild = func(sc *game.Scenario) error {
				// Each player audits `audits` other players.
				for i := 1; i <= len(sc.Players); i++ {
					for k := 1; k <= audits; k++ {
						targetID := (i-1+k)%len(sc.Players) + 1
						target := sc.Player(targetID)
						oa, err := audit.NewOnlineAudit(target.Node(),
							sc.RefImgs[target.Node()], sc.RNGSeedOf(target.Index()))
						if err != nil {
							return err
						}
						d := &onlineAuditDriver{target: target, oa: oa, everyNs: 500_000_000}
						drivers = append(drivers, d)
						sc.World.Drivers = append(sc.World.Drivers, d)
					}
				}
				return nil
			}
		})
		if err != nil {
			return nil, err
		}
		_ = s
		row := Fig8Row{AuditsPerMachine: audits, AvgFPS: metrics.Mean(fps), AuditsPassed: true}
		for _, d := range drivers {
			if d.failed != nil {
				row.AuditsPassed = false
			}
			if d.maxLag > row.MaxLagEntries {
				row.MaxLagEntries = d.maxLag
			}
		}
		res.Rows = append(res.Rows, row)
	}
	// The §6.11 5% slowdown variant.
	fps, _, err := runGameFPS(avmm.ModeAVMMRSA, scale, func(cfg *game.ScenarioConfig) {
		cfg.SlowdownPerInstrNs = game.GameNsPerInstr / 20
	})
	if err != nil {
		return nil, err
	}
	res.SlowdownFPS = metrics.Mean(fps)
	return res, nil
}

// Table renders Figure 8.
func (r *Fig8Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 8: frame rate with online auditing",
		"audits/machine", "avg fps", "max audit lag (entries)", "audits passed")
	for _, row := range r.Rows {
		t.Row(row.AuditsPerMachine, row.AvgFPS, row.MaxLagEntries, row.AuditsPassed)
	}
	t.Row("5% slowdown fps", r.SlowdownFPS, "", "")
	return t
}

// Fig9Row is the spot-check cost for one chunk size.
type Fig9Row struct {
	K             int
	TimePct       float64 // replay wall time vs full audit
	DataPct       float64 // transferred bytes vs full audit
	ChunksAudited int
	AllPassed     bool
}

// Fig9Result reproduces Figure 9: spot-checking cost versus chunk size on
// the minisql workload, normalized against a full audit.
type Fig9Result struct {
	Segments       int
	FullAuditWall  time.Duration
	FullAuditBytes int
	SnapshotBytes  int // per-snapshot transfer (the fixed cost)
	Rows           []Fig9Row
}

// RunFig9 runs the database workload with periodic snapshots, then audits
// every k-chunk for k ∈ {1,3,5,9,12} (excluding chunks that start at the
// very beginning, as the paper does).
func RunFig9(scale Scale) (*Fig9Result, error) {
	s, err := dbapp.NewScenario(dbapp.ScenarioConfig{
		Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(), Seed: 17,
		SnapshotEveryNs: scale.DBSnapshotNs, FakeSignatures: true,
	})
	if err != nil {
		return nil, err
	}
	s.Run(scale.DBNs)
	entries := s.Server.Log.Entries()
	points, err := audit.FindSnapshots(entries)
	if err != nil {
		return nil, err
	}
	if len(points) < 3 {
		return nil, fmt.Errorf("fig9: only %d snapshots; increase duration", len(points))
	}
	auths, err := s.ServerAuths()
	if err != nil {
		return nil, err
	}
	a := s.Auditor()
	res := &Fig9Result{Segments: len(points) - 1}

	var full *audit.Result
	res.FullAuditWall = stopwatch(func() {
		full = a.AuditFull("db-server", 0, entries, auths)
	})
	if !full.Passed {
		return nil, fmt.Errorf("fig9: full audit failed: %v", full.Fault)
	}
	res.FullAuditBytes = s.Server.TotalLogBytes()
	if b, err := s.Server.Snaps.TransferBytes(1); err == nil {
		res.SnapshotBytes = b
	}

	for _, k := range []int{1, 3, 5, 9, 12} {
		if k > res.Segments-1 {
			break
		}
		var wall time.Duration
		var data int
		chunks := 0
		allPassed := true
		// Exclude chunks that start at the beginning of the log (i >= 1).
		for i := 1; i+k < len(points); i++ {
			start := points[i]
			end := points[i+k]
			restored, err := s.Server.Snaps.Materialize(int(start.SnapIdx))
			if err != nil {
				return nil, err
			}
			chunk := entries[start.EntryIndex+1 : end.EntryIndex+1]
			var cres *audit.Result
			wall += stopwatch(func() {
				cres = a.AuditChunk(audit.ChunkRequest{
					Node: "db-server", NodeIdx: 0,
					Start: restored, StartRoot: start.Root, PrevHash: start.EntryHash,
					Entries: chunk, Auths: auths,
				})
			})
			if !cres.Passed {
				allPassed = false
			}
			transfer, err := s.Server.Snaps.TransferBytes(int(start.SnapIdx))
			if err != nil {
				return nil, err
			}
			data += transfer + len(tevlog.MarshalSegment(chunk))
			chunks++
		}
		if chunks == 0 {
			continue
		}
		row := Fig9Row{K: k, ChunksAudited: chunks, AllPassed: allPassed}
		row.TimePct = float64(wall) / float64(chunks) / float64(res.FullAuditWall) * 100
		row.DataPct = float64(data) / float64(chunks) / float64(res.FullAuditBytes) * 100
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders Figure 9.
func (r *Fig9Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 9: spot-checking cost (normalized to a full audit)",
		"k (segments)", "time %", "data %", "chunks", "all passed")
	for _, row := range r.Rows {
		t.Row(row.K, row.TimePct, row.DataPct, row.ChunksAudited, row.AllPassed)
	}
	t.Row("segments", r.Segments, "", "", "")
	t.Row("snapshot transfer (bytes)", r.SnapshotBytes, "", "", "")
	return t
}
