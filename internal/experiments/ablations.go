package experiments

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/dbapp"
	"repro/internal/metrics"
	"repro/internal/tevlog"
	"repro/internal/vm"
	"repro/internal/wire"
)

// AblationChainResult quantifies the hash-chain granularity choice (§4.3):
// hashing every entry individually (tamper evidence at entry granularity)
// versus folding batches of entries into one chain link. Batching saves
// hashing time but coarsens the evidence an auditor can pinpoint.
type AblationChainResult struct {
	Entries  int
	PerEntry time.Duration // batch size 1 (the design used)
	Batch8   time.Duration
	Batch64  time.Duration
}

// RunAblationChain measures chain computation over a real recorded log.
func RunAblationChain(scale Scale) (*AblationChainResult, error) {
	s, err := runGame(avmm.ModeAVMMRSA, scale, nil)
	if err != nil {
		return nil, err
	}
	entries := s.Player(1).Log.Entries()
	res := &AblationChainResult{Entries: len(entries)}
	chainBatched := func(batch int) {
		var prev tevlog.Hash
		buf := make([]byte, 0, 4096)
		for i := 0; i < len(entries); i += batch {
			buf = buf[:0]
			for j := i; j < i+batch && j < len(entries); j++ {
				buf = entries[j].Marshal(buf)
			}
			prev = tevlog.ChainHash(prev, entries[i].Seq, entries[i].Type, tevlog.HashContent(buf))
		}
	}
	res.PerEntry = stopwatch(func() { chainBatched(1) })
	res.Batch8 = stopwatch(func() { chainBatched(8) })
	res.Batch64 = stopwatch(func() { chainBatched(64) })
	return res, nil
}

// Table renders the chain ablation.
func (r *AblationChainResult) Table() *metrics.Table {
	t := metrics.NewTable("Ablation: hash-chain granularity", "batch size", "chain time", "evidence granularity")
	t.Row(1, r.PerEntry.String(), "single entry (design)")
	t.Row(8, r.Batch8.String(), "8 entries")
	t.Row(64, r.Batch64.String(), "64 entries")
	return t
}

// AblationSnapshotResult quantifies incremental (dirty-page) snapshots
// against full dumps (§4.4 cites Remus-style incremental snapshots; the
// paper's prototype still dumped full memory, §6.12).
type AblationSnapshotResult struct {
	Snapshots        int
	IncrementalBytes int
	FullDumpBytes    int
	SavingsFactor    float64
}

// RunAblationSnapshots measures both policies on the minisql run.
func RunAblationSnapshots(scale Scale) (*AblationSnapshotResult, error) {
	s, err := dbapp.NewScenario(dbapp.ScenarioConfig{
		Mode: avmm.ModeAVMMNoSig, Cost: avmm.DefaultCostModel(), Seed: 23,
		SnapshotEveryNs: scale.DBSnapshotNs,
	})
	if err != nil {
		return nil, err
	}
	s.Run(scale.DBNs / 2)
	res := &AblationSnapshotResult{Snapshots: s.Server.Snaps.Count()}
	for i := 0; i < s.Server.Snaps.Count(); i++ {
		snap, err := s.Server.Snaps.Snapshot(i)
		if err != nil {
			return nil, err
		}
		res.IncrementalBytes += snap.IncrementBytes
		full, err := s.Server.Snaps.TransferBytes(i)
		if err != nil {
			return nil, err
		}
		res.FullDumpBytes += full
	}
	if res.IncrementalBytes > 0 {
		res.SavingsFactor = float64(res.FullDumpBytes) / float64(res.IncrementalBytes)
	}
	return res, nil
}

// Table renders the snapshot ablation.
func (r *AblationSnapshotResult) Table() *metrics.Table {
	t := metrics.NewTable("Ablation: incremental vs full snapshots", "policy", "total bytes", "")
	t.Row("incremental (dirty pages)", r.IncrementalBytes, "")
	t.Row("full dumps", r.FullDumpBytes, "")
	t.Row("savings factor", r.SavingsFactor, "")
	return t
}

// AblationLandmarkResult quantifies the landmark representation (§4.4):
// instruction counter alone versus the full (instruction counter, branch
// counter, PC) triple the design records. The triple costs extra bytes per
// asynchronous event but lets an auditor reject logs whose landmarks are
// internally consistent in instruction count yet name a different machine
// state — exactly the check exercised by the tamper tests.
type AblationLandmarkResult struct {
	Events         int
	FullBytes      int
	ICountOnly     int
	OverheadFactor float64
}

// RunAblationLandmarks measures both encodings over a recorded log.
func RunAblationLandmarks(scale Scale) (*AblationLandmarkResult, error) {
	s, err := runGame(avmm.ModeAVMMRSA, scale, nil)
	if err != nil {
		return nil, err
	}
	res := &AblationLandmarkResult{}
	var buf []byte
	for _, e := range s.Player(1).Log.Entries() {
		if e.Type != tevlog.TypeIRQ && e.Type != tevlog.TypeSnapshot {
			continue
		}
		ev, err := wire.ParseEvent(e.Content)
		if err != nil {
			return nil, err
		}
		res.Events++
		buf = buf[:0]
		buf = binary.AppendUvarint(buf, ev.Landmark.ICount)
		buf = binary.AppendUvarint(buf, ev.Landmark.Branches)
		buf = binary.AppendUvarint(buf, uint64(ev.Landmark.PC))
		res.FullBytes += len(buf)
		buf = buf[:0]
		buf = binary.AppendUvarint(buf, ev.Landmark.ICount)
		res.ICountOnly += len(buf)
	}
	if res.ICountOnly > 0 {
		res.OverheadFactor = float64(res.FullBytes) / float64(res.ICountOnly)
	}
	return res, nil
}

// Table renders the landmark ablation.
func (r *AblationLandmarkResult) Table() *metrics.Table {
	t := metrics.NewTable("Ablation: landmark representation", "encoding", "bytes", "notes")
	t.Row("icount+branches+pc (design)", r.FullBytes, "detects landmark-state forgery")
	t.Row("icount only", r.ICountOnly, "accepts forged branch/pc landmarks")
	t.Row("overhead factor", r.OverheadFactor, "")
	return t
}

// AblationPartialResult quantifies partial-state audits (§4.4) and evidence
// minimization (§7.3): how many pages a chunk replay actually touches, and
// the resulting transfer saving against a full snapshot download.
type AblationPartialResult struct {
	TotalPages    int
	AccessedPages int
	FullBytes     int
	PartialBytes  int
	SavingsFactor float64
}

// RunAblationPartial replays one minisql chunk with access tracking and
// builds the equivalent partial state.
func RunAblationPartial(scale Scale) (*AblationPartialResult, error) {
	s, err := dbapp.NewScenario(dbapp.ScenarioConfig{
		Mode: avmm.ModeAVMMNoSig, Cost: avmm.DefaultCostModel(), Seed: 41,
		SnapshotEveryNs: scale.DBSnapshotNs,
	})
	if err != nil {
		return nil, err
	}
	s.Run(scale.DBNs / 2)
	entries := s.Server.Log.Entries()
	points, err := audit.FindSnapshots(entries)
	if err != nil {
		return nil, err
	}
	if len(points) < 3 {
		return nil, fmt.Errorf("ablation-partial: only %d snapshots", len(points))
	}
	start, end := points[1], points[2]
	restored, err := s.Server.Snaps.Materialize(int(start.SnapIdx))
	if err != nil {
		return nil, err
	}
	chunk := entries[start.EntryIndex+1 : end.EntryIndex+1]
	a := s.Auditor()
	ev := &audit.Evidence{
		Accused: "db-server", AccusedIdx: 0, Entries: chunk,
		Start: restored, StartRoot: start.Root, PrevHash: start.EntryHash,
		RNGSeed: 41 + 500,
	}
	min, err := a.MinimizeEvidence(ev)
	if err != nil {
		return nil, err
	}
	res := &AblationPartialResult{
		TotalPages:    len(restored.Mem) / vm.PageSize,
		AccessedPages: len(min.Partial.Pages),
		FullBytes:     len(restored.Mem) + len(restored.Machine) + len(restored.Device),
		PartialBytes:  min.Partial.Bytes(),
	}
	if res.PartialBytes > 0 {
		res.SavingsFactor = float64(res.FullBytes) / float64(res.PartialBytes)
	}
	return res, nil
}

// Table renders the partial-state ablation.
func (r *AblationPartialResult) Table() *metrics.Table {
	t := metrics.NewTable("Ablation: partial-state audit / evidence minimization", "quantity", "value", "")
	t.Row("pages in snapshot", r.TotalPages, "")
	t.Row("pages touched by replay", r.AccessedPages, "")
	t.Row("full-state transfer (bytes)", r.FullBytes, "")
	t.Row("partial transfer incl. proofs (bytes)", r.PartialBytes, "")
	t.Row("savings factor", r.SavingsFactor, "")
	return t
}
