// Command game reproduces the paper's headline demonstration (§5, §6.3):
// a multiplayer fragfest match in which one player installs a cheat, and
// the other players detect it by auditing his log. Choose the cheat with
// -cheat (any of the 26 catalog names) or run an honest match with
// -cheat "".
//
//	go run ./examples/game -cheat unlimited-ammo
//	go run ./examples/game -list
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/avmm"
	"repro/internal/game"
	"repro/internal/sig"
)

func main() {
	cheatName := flag.String("cheat", "aimbot", "cheat for player 2 to install ('' = honest match)")
	list := flag.Bool("list", false, "list the cheat catalog and exit")
	seconds := flag.Uint64("seconds", 15, "virtual seconds of play")
	flag.Parse()

	if *list {
		fmt.Println("the 26-cheat catalog (Table 1):")
		for _, c := range game.Catalog() {
			class := "class 1 (installed in image)"
			if c.Class2 {
				class = "class 2 (detectable in ANY implementation)"
			}
			fmt.Printf("  %2d. %-17s %s — %s\n", c.ID, c.Name, class, c.Desc)
		}
		return
	}

	cfg := game.ScenarioConfig{
		Players: 3, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
		Seed: 7, SnapshotEveryNs: 5_000_000_000, FakeSignatures: true,
	}
	if *cheatName != "" {
		cheat, err := game.CatalogByName(*cheatName)
		if err != nil {
			log.Fatalf("%v (use -list to see the catalog)", err)
		}
		cfg.CheatPlayer = 2
		cfg.Cheat = cheat
		fmt.Printf("player2 installs %q: %s\n", cheat.Name, cheat.Desc)
	} else {
		fmt.Println("honest match: nobody cheats")
	}

	s, err := game.NewScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("playing %d virtual seconds (3 players + server, full AVMM)...\n\n", *seconds)
	s.Run(*seconds * 1_000_000_000)

	for i := 1; i <= 3; i++ {
		p := s.Player(i)
		fmt.Printf("player%d: %6d frames, log %7d bytes, %4d net frames sent\n",
			i, p.Devs.Frames, p.TotalLogBytes(), s.Net.NodeStats(i).FramesSent)
	}

	fmt.Println("\neach player now audits every other player ...")
	verdicts := 0
	for _, node := range []sig.NodeID{"player1", "player2", "player3", "server"} {
		res, err := s.AuditNode(node)
		if err != nil {
			log.Fatal(err)
		}
		status := "PASSED"
		if !res.Passed {
			status = fmt.Sprintf("FAULT — %s (%s check)", res.Fault.Detail, res.Fault.Check)
			verdicts++
		}
		fmt.Printf("  audit of %-8s %s\n", node+":", status)
	}
	if *cheatName != "" && verdicts == 0 {
		log.Fatal("cheat was not detected!")
	}
	if *cheatName == "" && verdicts != 0 {
		log.Fatal("honest player failed audit!")
	}
	fmt.Println("\ndone: replay-based auditing detected exactly the cheating machines.")
}
