// Command cloudspot demonstrates the hosted-service scenario (paper §3.5,
// §6.12, §7.1): a database server runs in an AVM on a provider's machine;
// the customer audits it with spot checks — replaying only selected
// k-chunks of the log between authenticated snapshots instead of the whole
// execution.
//
//	go run ./examples/cloudspot
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/dbapp"
	"repro/internal/tevlog"
)

func main() {
	s, err := dbapp.NewScenario(dbapp.ScenarioConfig{
		Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(), Seed: 99,
		SnapshotEveryNs: 20_000_000_000, FakeSignatures: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	const run = 120_000_000_000 // 2 virtual minutes
	fmt.Println("running minisql under the AVMM for 2 virtual minutes, snapshot every 20 s ...")
	s.Run(run)

	entries := s.Server.Log.All()
	points, err := audit.FindSnapshots(entries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server log: %d entries, %d bytes, %d snapshots\n\n",
		len(entries), s.Server.TotalLogBytes(), len(points))

	auths, err := s.ServerAuths()
	if err != nil {
		log.Fatal(err)
	}
	a := s.Auditor()

	// Full audit, for the cost baseline.
	start := time.Now()
	full := a.AuditFull("db-server", 0, entries, auths)
	fullWall := time.Since(start)
	if !full.Passed {
		log.Fatalf("full audit failed: %v", full.Fault)
	}
	fmt.Printf("full audit:    PASSED in %v (%d instructions replayed, %d bytes transferred)\n",
		fullWall.Round(time.Millisecond), full.Replay.Instructions, s.Server.TotalLogBytes())

	// Spot check: audit a single chunk in the middle of the execution.
	if len(points) < 3 {
		log.Fatal("not enough snapshots for a spot check")
	}
	startPt, endPt := points[1], points[2]
	restored, err := s.Server.Snaps.Materialize(int(startPt.SnapIdx))
	if err != nil {
		log.Fatal(err)
	}
	transfer, err := s.Server.Snaps.TransferBytes(int(startPt.SnapIdx))
	if err != nil {
		log.Fatal(err)
	}
	chunk := entries[startPt.EntryIndex+1 : endPt.EntryIndex+1]
	startT := time.Now()
	res := a.AuditChunk(audit.ChunkRequest{
		Node: "db-server", NodeIdx: 0,
		Start: restored, StartRoot: startPt.Root, PrevHash: startPt.EntryHash,
		Entries: chunk, Auths: auths,
	})
	chunkWall := time.Since(startT)
	if !res.Passed {
		log.Fatalf("spot check failed: %v", res.Fault)
	}
	data := transfer + len(tevlog.MarshalSegment(chunk))
	fmt.Printf("1-chunk check: PASSED in %v (snapshot %d → %d; %d bytes transferred)\n",
		chunkWall.Round(time.Millisecond), startPt.SnapIdx, endPt.SnapIdx, data)
	fmt.Printf("               time %.1f%% / data %.1f%% of the full audit\n\n",
		float64(chunkWall)/float64(fullWall)*100,
		float64(data)/float64(s.Server.TotalLogBytes())*100)

	// Spot checks also catch tampered state: corrupt one byte of the
	// downloaded snapshot (say, a doctored account balance).
	fmt.Println("simulating a provider handing over a doctored snapshot ...")
	restored2, err := s.Server.Snaps.Materialize(int(startPt.SnapIdx))
	if err != nil {
		log.Fatal(err)
	}
	restored2.Mem[50_000] ^= 0x01
	bad := a.AuditChunk(audit.ChunkRequest{
		Node: "db-server", NodeIdx: 0,
		Start: restored2, StartRoot: startPt.Root, PrevHash: startPt.EntryHash,
		Entries: chunk, Auths: auths,
	})
	if bad.Passed {
		log.Fatal("doctored snapshot passed!")
	}
	fmt.Printf("  detected: %s (%s check)\n", bad.Fault.Detail, bad.Fault.Check)
	fmt.Println("\ncloudspot complete: spot checks audit slices of a long execution at a fraction of the cost.")
}
