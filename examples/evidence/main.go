// Command evidence walks through the multi-party accountability story of
// paper §3.3/§4.6: Alice detects that Bob's machine is faulty, bundles
// evidence, and Charlie — who trusts neither of them — verifies it
// independently. It also demonstrates fork detection and non-response
// evidence.
//
//	go run ./examples/evidence
package main

import (
	"fmt"
	"log"

	avm "repro"
	"repro/internal/audit"
	"repro/internal/sig"
	"repro/internal/tevlog"
)

const serviceSrc = `
	const NET_RX_STATUS = 0x20;
	const NET_RX_LEN = 0x21;
	const NET_RX_FROM = 0x22;
	const NET_RX_BYTE = 0x23;
	const NET_RX_DONE = 0x24;
	const NET_TX_BYTE = 0x28;
	const NET_TX_COMMIT = 0x29;
	var total = 0;
	interrupt(1) func on_net() { }
	func main() {
		sti();
		while (1) {
			while (in(NET_RX_STATUS) == 0) { wfi(); }
			var n = in(NET_RX_LEN);
			var from = in(NET_RX_FROM);
			var v = in(NET_RX_BYTE);
			out(NET_RX_DONE, 0);
			total = total + v;
			out(NET_TX_BYTE, total & 0xFF);
			out(NET_TX_COMMIT, from);
		}
	}
`

// cheatSrc skims: it adds only half of every third deposit.
const cheatSrc = `
	const NET_RX_STATUS = 0x20;
	const NET_RX_LEN = 0x21;
	const NET_RX_FROM = 0x22;
	const NET_RX_BYTE = 0x23;
	const NET_RX_DONE = 0x24;
	const NET_TX_BYTE = 0x28;
	const NET_TX_COMMIT = 0x29;
	var total = 0;
	var nth = 0;
	interrupt(1) func on_net() { }
	func main() {
		sti();
		while (1) {
			while (in(NET_RX_STATUS) == 0) { wfi(); }
			var n = in(NET_RX_LEN);
			var from = in(NET_RX_FROM);
			var v = in(NET_RX_BYTE);
			out(NET_RX_DONE, 0);
			nth = nth + 1;
			if (nth % 3 == 0) { total = total + v / 2; }
			else { total = total + v; }
			out(NET_TX_BYTE, total & 0xFF);
			out(NET_TX_COMMIT, from);
		}
	}
`

const depositorSrc = `
	const NET_RX_STATUS = 0x20;
	const NET_RX_LEN = 0x21;
	const NET_RX_BYTE = 0x23;
	const NET_RX_DONE = 0x24;
	const NET_TX_BYTE = 0x28;
	const NET_TX_COMMIT = 0x29;
	const DEBUG = 0x60;
	interrupt(1) func on_net() { }
	func main() {
		sti();
		var i = 0;
		while (i < 9) {
			out(NET_TX_BYTE, 10);
			out(NET_TX_COMMIT, 0);
			while (in(NET_RX_STATUS) == 0) { wfi(); }
			var n = in(NET_RX_LEN);
			out(DEBUG, in(NET_RX_BYTE));
			out(NET_RX_DONE, 0);
			i = i + 1;
		}
		halt();
	}
`

func main() {
	reference, err := avm.Compile("ledger", serviceSrc, 64*1024)
	if err != nil {
		log.Fatal(err)
	}
	skimmer, err := avm.Compile("ledger", cheatSrc, 64*1024)
	if err != nil {
		log.Fatal(err)
	}
	client, err := avm.Compile("depositor", depositorSrc, 64*1024)
	if err != nil {
		log.Fatal(err)
	}

	// Bob secretly runs the skimming variant.
	d, err := avm.NewDeployment(avm.DeploymentConfig{Mode: avm.ModeAVMMRSA, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := d.AddNode("bob", skimmer, 0); err != nil {
		log.Fatal(err)
	}
	if _, err := d.AddNode("alice", client, 1); err != nil {
		log.Fatal(err)
	}
	alice, _ := d.Node("alice")
	fmt.Println("alice deposits 9 × 10 into bob's ledger service ...")
	if !d.RunUntil(func() bool { return alice.Machine.Halted }, 120*avm.VirtualSecond) {
		log.Fatal("client did not finish")
	}
	fmt.Printf("running totals bob reported: %v (should end at 90)\n\n", alice.Devs.Debug)

	// Alice audits bob against the agreed reference image.
	res, err := d.Audit("bob", reference)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice's audit: %v\n", res)
	if res.Passed {
		log.Fatal("skimming service passed audit!")
	}

	// She bundles evidence and hands it to Charlie.
	ev, err := d.BuildEvidence("bob", res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nevidence bundle: %d log entries, %d authenticators, reason: %s\n",
		len(ev.Entries), len(ev.Auths), ev.Reason)

	// Charlie verifies with his own copy of the reference image and the
	// public keys — he trusts neither Alice nor Bob.
	verdict, err := avm.VerifyEvidence(ev, d.Keys, reference, avm.ModeAVMMRSA)
	if err != nil {
		log.Fatalf("charlie rejected the evidence: %v", err)
	}
	fmt.Printf("charlie's independent verdict: %v\n", verdict)

	// Forked logs: if Bob kept two divergent logs and committed to both,
	// any pair of conflicting authenticators convicts him (§4.3).
	fmt.Println("\nfork detection: two authenticators for the same entry, different hashes ...")
	signer := sig.MustGenerateRSA("bob", sig.DefaultKeyBits, "fork-demo")
	l1, l2 := tevlog.New(signer), tevlog.New(signer)
	l1.Append(tevlog.TypeSend, []byte("for alice"))
	l2.Append(tevlog.TypeSend, []byte("for charlie"))
	a1, _ := l1.LastAuthenticator()
	a2, _ := l2.LastAuthenticator()
	if err := tevlog.CheckFork(a1, a2); err != nil {
		fmt.Printf("  %v\n", err)
	}

	// Non-response: if Bob refuses to hand over a log segment, the freshest
	// authenticator alone proves the entries exist (§4.5).
	nre := &audit.NonResponseEvidence{Accused: "bob", Auth: a1}
	keys := sig.NewKeyStore()
	keys.Add(signer.Public())
	if err := audit.VerifyNonResponse(nre, keys); err == nil {
		fmt.Printf("non-response evidence: authenticator for entry %d verifies; bob stays suspected until he answers\n", nre.Auth.Seq)
	}
	fmt.Println("\nevidence example complete.")
}
