// Command quickstart demonstrates the basic AVM scenario of the paper's
// Figure 1: Alice relies on software running on Bob's machine. Bob's
// machine records a tamper-evident log; Alice audits it by deterministic
// replay against her reference image. Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	avm "repro"
)

// serviceSrc is the software S: a key-value store Alice's client queries.
const serviceSrc = `
	const NET_RX_STATUS = 0x20;
	const NET_RX_LEN = 0x21;
	const NET_RX_FROM = 0x22;
	const NET_RX_BYTE = 0x23;
	const NET_RX_DONE = 0x24;
	const NET_TX_BYTE = 0x28;
	const NET_TX_COMMIT = 0x29;

	var keys[256];
	var vals[256];

	interrupt(1) func on_net() { }

	func main() {
		sti();
		while (1) {
			while (in(NET_RX_STATUS) == 0) { wfi(); }
			var n = in(NET_RX_LEN);
			var from = in(NET_RX_FROM);
			var op = in(NET_RX_BYTE);
			var k = in(NET_RX_BYTE);
			var v = in(NET_RX_BYTE);
			out(NET_RX_DONE, 0);
			if (op == 'P') { keys[k] = 1; vals[k] = v; out(NET_TX_BYTE, 1); }
			if (op == 'G') {
				if (keys[k]) { out(NET_TX_BYTE, vals[k]); }
				else { out(NET_TX_BYTE, 0); }
			}
			out(NET_TX_COMMIT, from);
		}
	}
`

// clientSrc puts ten values and reads them back.
const clientSrc = `
	const NET_RX_STATUS = 0x20;
	const NET_RX_LEN = 0x21;
	const NET_RX_BYTE = 0x23;
	const NET_RX_DONE = 0x24;
	const NET_TX_BYTE = 0x28;
	const NET_TX_COMMIT = 0x29;
	const DEBUG = 0x60;

	interrupt(1) func on_net() { }

	func request(op, k, v) {
		out(NET_TX_BYTE, op);
		out(NET_TX_BYTE, k);
		out(NET_TX_BYTE, v);
		out(NET_TX_COMMIT, 0);
		while (in(NET_RX_STATUS) == 0) { wfi(); }
		var n = in(NET_RX_LEN);
		var r = in(NET_RX_BYTE);
		out(NET_RX_DONE, 0);
		return r;
	}

	func main() {
		sti();
		var i = 0;
		while (i < 10) { request('P', i, i * 7); i = i + 1; }
		i = 0;
		while (i < 10) { out(DEBUG, request('G', i, 0)); i = i + 1; }
		halt();
	}
`

func main() {
	service, err := avm.Compile("kvservice", serviceSrc, 64*1024)
	if err != nil {
		log.Fatalf("compiling service: %v", err)
	}
	client, err := avm.Compile("kvclient", clientSrc, 64*1024)
	if err != nil {
		log.Fatalf("compiling client: %v", err)
	}

	// Bob's machine runs the service in an AVM; Alice's client talks to it.
	// ModeAVMMRSA is the full system: tamper-evident log + RSA-768
	// authenticators, exactly the paper's avmm-rsa768 configuration.
	d, err := avm.NewDeployment(avm.DeploymentConfig{Mode: avm.ModeAVMMRSA, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := d.AddNode("bob", service, 0); err != nil {
		log.Fatal(err)
	}
	if _, err := d.AddNode("alice", client, 1); err != nil {
		log.Fatal(err)
	}

	alice, _ := d.Node("alice")
	bob, _ := d.Node("bob")
	fmt.Println("running: alice's client issues 20 requests against bob's service ...")
	if !d.RunUntil(func() bool { return alice.Machine.Halted }, 120*avm.VirtualSecond) {
		log.Fatal("client did not finish")
	}
	fmt.Printf("client results: %v\n", alice.Devs.Debug)
	fmt.Printf("bob's tamper-evident log: %d entries, %d bytes\n\n",
		bob.Log.Len(), bob.TotalLogBytes())

	// Alice audits bob: she collects the authenticators she received with
	// each of bob's messages, downloads his log, verifies the hash chain,
	// and replays her reference image against it.
	fmt.Println("auditing bob against the reference image ...")
	res, err := d.Audit("bob", service)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(" ", res)
	if !res.Passed {
		log.Fatal("unexpected: honest machine failed audit")
	}
	fmt.Printf("  replayed %d instructions, matched %d outputs, consumed %d log entries\n",
		res.Replay.Instructions, res.Replay.SendsMatched, res.Replay.EntriesConsumed)

	// Now suppose Bob had tampered with his log before handing it over:
	// flip one byte of one entry. The hash chain no longer matches the
	// authenticators Alice holds.
	fmt.Println("\nsimulating a tampered log ...")
	entries := bob.Log.All()
	entries[len(entries)/2].Content = append([]byte(nil), entries[len(entries)/2].Content...)
	entries[len(entries)/2].Content[0] ^= 0xFF
	auditor, err := d.Auditor("bob", service)
	if err != nil {
		log.Fatal(err)
	}
	auths, err := d.CollectAuthenticators("bob")
	if err != nil {
		log.Fatal(err)
	}
	res2 := auditor.AuditFull("bob", 0, entries, auths)
	fmt.Println(" ", res2)
	if res2.Passed {
		log.Fatal("unexpected: tampered log passed audit")
	}
	fmt.Println("\nquickstart complete: honest execution passed, tampering was detected.")
}
