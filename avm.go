// Package avm is the public API of the accountable virtual machines
// library, a from-scratch reproduction of "Accountable Virtual Machines"
// (Haeberlen, Aditya, Rodrigues, Druschel — OSDI 2010).
//
// An accountable virtual machine (AVM) executes a binary image while
// recording non-repudiable information that lets an auditor check, after
// the fact, whether the machine behaved as a trusted reference image would
// have. The library provides:
//
//   - a deterministic virtual machine and a MiniC compiler for building
//     guest images (Compile);
//   - the accountable virtual machine monitor (AVMM): tamper-evident
//     logging of messages and nondeterministic events, signed
//     authenticators, acknowledgments, and authenticated snapshots
//     (Deployment, Monitor);
//   - the auditor: log verification, syntactic checks, deterministic
//     replay, spot checks, online audits, and transferable evidence
//     (Auditor, Evidence).
//
// # Quick start
//
//	img, err := avm.Compile("service", src, 64*1024)
//	d, err := avm.NewDeployment(avm.DeploymentConfig{Mode: avm.ModeAVMMRSA})
//	mon, err := d.AddNode("bob", img, 1)
//	d.Run(10 * avm.VirtualSecond)
//	result, err := d.Audit("bob")
//
// A failed audit yields evidence any third party can verify with
// VerifyEvidence — without trusting the auditor or the audited machine.
package avm

import (
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/lang"
	"repro/internal/netsim"
	"repro/internal/sig"
	"repro/internal/tevlog"
	"repro/internal/vm"
)

// VirtualSecond is one second of virtual time in the nanosecond units the
// deployment clock uses.
const VirtualSecond = uint64(time.Second)

// Re-exported core types. The aliases make the internal implementation
// types usable directly through the public API.
type (
	// Image is a bootable guest image.
	Image = vm.Image
	// Machine is the deterministic virtual machine.
	Machine = vm.Machine
	// Mode selects one of the five evaluation configurations.
	Mode = avmm.Mode
	// Monitor is the accountable virtual machine monitor for one node.
	Monitor = avmm.Monitor
	// CostModel charges monitor work against virtual time.
	CostModel = avmm.CostModel
	// Auditor checks machines against a reference image.
	Auditor = audit.Auditor
	// Result is an audit outcome.
	Result = audit.Result
	// FaultReport pinpoints a detected fault.
	FaultReport = audit.FaultReport
	// Evidence is a transferable, independently verifiable proof of fault.
	Evidence = audit.Evidence
	// Authenticator is a signed commitment to a log prefix.
	Authenticator = tevlog.Authenticator
	// NodeID names a principal.
	NodeID = sig.NodeID
	// Signer signs authenticators.
	Signer = sig.Signer
	// KeyStore maps principals to verifiers.
	KeyStore = sig.KeyStore
)

// The five evaluation configurations (paper §6.2).
const (
	ModeBareHW      = avmm.ModeBareHW
	ModeVMwareNoRec = avmm.ModeVMwareNoRec
	ModeVMwareRec   = avmm.ModeVMwareRec
	ModeAVMMNoSig   = avmm.ModeAVMMNoSig
	ModeAVMMRSA     = avmm.ModeAVMMRSA
)

// Compile builds a guest image from MiniC source. memSize is the machine
// memory in bytes (0 = 256 KiB).
func Compile(name, src string, memSize int) (*Image, error) {
	return lang.Compile(name, src, lang.Options{MemSize: memSize})
}

// DeploymentConfig assembles a set of accountable machines on a simulated
// network.
type DeploymentConfig struct {
	// Mode is the evaluation configuration for all nodes (default
	// ModeAVMMRSA, the full system).
	Mode Mode
	// Cost is the virtual-time cost model (default DefaultCostModel).
	Cost *CostModel
	// Seed drives deterministic key generation, device RNGs and network
	// jitter.
	Seed uint64
	// LatencyNs is the one-way network latency (default 96 µs).
	LatencyNs uint64
	// SnapshotEveryNs takes periodic snapshots when nonzero.
	SnapshotEveryNs uint64
	// KeyBits is the RSA modulus size (default 768, as in the paper).
	KeyBits int
}

// Deployment is a running set of accountable machines.
type Deployment struct {
	cfg      DeploymentConfig
	Net      *netsim.Network
	World    *avmm.World
	Keys     *KeyStore
	monitors map[NodeID]*Monitor
	images   map[NodeID]*Image
	seeds    map[NodeID]uint64
}

// NewDeployment creates an empty deployment.
func NewDeployment(cfg DeploymentConfig) (*Deployment, error) {
	if cfg.Cost == nil {
		cm := avmm.DefaultCostModel()
		cfg.Cost = &cm
	}
	if cfg.LatencyNs == 0 {
		cfg.LatencyNs = 96_000
	}
	if cfg.KeyBits == 0 {
		cfg.KeyBits = sig.DefaultKeyBits
	}
	net := netsim.New(netsim.Config{BaseLatencyNs: cfg.LatencyNs, Seed: cfg.Seed + 1})
	keys := sig.NewKeyStore()
	return &Deployment{
		cfg: cfg, Net: net, World: avmm.NewWorld(net, keys), Keys: keys,
		monitors: make(map[NodeID]*Monitor),
		images:   make(map[NodeID]*Image),
		seeds:    make(map[NodeID]uint64),
	}, nil
}

// AddNode boots image on a new accountable machine named name at network
// index idx (indices must be added in order starting from 0).
func (d *Deployment) AddNode(name string, image *Image, idx int) (*Monitor, error) {
	node := NodeID(name)
	if _, dup := d.monitors[node]; dup {
		return nil, fmt.Errorf("avm: node %q already exists", name)
	}
	var signer Signer
	if d.cfg.Mode.Signs() {
		s, err := sig.GenerateRSA(node, d.cfg.KeyBits, fmt.Sprintf("deploy-%d", d.cfg.Seed))
		if err != nil {
			return nil, err
		}
		signer = s
	} else {
		signer = sig.NullSigner{Node: node}
	}
	rngSeed := d.cfg.Seed + 1000 + uint64(idx)
	mon, err := avmm.NewMonitor(avmm.Config{
		Node: node, Index: idx, Mode: d.cfg.Mode, Cost: *d.cfg.Cost,
		Signer: signer, Keys: d.Keys, Image: image, Net: d.Net,
		RNGSeed: rngSeed, SnapshotEveryNs: d.cfg.SnapshotEveryNs,
	})
	if err != nil {
		return nil, err
	}
	if err := d.World.Add(mon); err != nil {
		return nil, err
	}
	d.monitors[node] = mon
	d.images[node] = image
	d.seeds[node] = rngSeed
	return mon, nil
}

// Node returns the monitor for name.
func (d *Deployment) Node(name string) (*Monitor, bool) {
	m, ok := d.monitors[NodeID(name)]
	return m, ok
}

// Run advances the deployment by the given amount of virtual time.
func (d *Deployment) Run(durationNs uint64) {
	d.World.Run(d.World.Now() + durationNs)
}

// RunUntil advances until cond holds or the additional duration elapses.
func (d *Deployment) RunUntil(cond func() bool, durationNs uint64) bool {
	return d.World.RunUntil(cond, d.World.Now()+durationNs)
}

// CollectAuthenticators gathers every authenticator other nodes hold for
// name, plus the machine's own snapshot and head commitments — the §4.6
// multi-party collection step.
func (d *Deployment) CollectAuthenticators(name string) ([]Authenticator, error) {
	node := NodeID(name)
	target, ok := d.monitors[node]
	if !ok {
		return nil, fmt.Errorf("avm: unknown node %q", name)
	}
	var auths []Authenticator
	for _, mon := range d.monitors {
		if mon != target {
			auths = append(auths, mon.AuthenticatorsFor(node)...)
		}
	}
	auths = append(auths, target.SnapshotAuths()...)
	if target.Log.Len() > 0 {
		head, err := target.Log.LastAuthenticator()
		if err != nil {
			return nil, err
		}
		auths = append(auths, head)
	}
	return auths, nil
}

// Auditor returns an auditor for name using reference as the trusted image
// (pass nil to use the image the node was booted with — appropriate only
// when the deployment itself is trusted, e.g. in tests).
func (d *Deployment) Auditor(name string, reference *Image) (*Auditor, error) {
	node := NodeID(name)
	if _, ok := d.monitors[node]; !ok {
		return nil, fmt.Errorf("avm: unknown node %q", name)
	}
	if reference == nil {
		reference = d.images[node]
	}
	return &Auditor{
		Keys: d.Keys, RefImage: reference, RNGSeed: d.seeds[node],
		TamperEvident:    d.cfg.Mode.TamperEvident(),
		VerifySignatures: d.cfg.Mode.Signs(),
	}, nil
}

// Audit performs a full audit of name against reference (nil = boot image),
// collecting authenticators from all peers.
func (d *Deployment) Audit(name string, reference *Image) (*Result, error) {
	node := NodeID(name)
	target, ok := d.monitors[node]
	if !ok {
		return nil, fmt.Errorf("avm: unknown node %q", name)
	}
	a, err := d.Auditor(name, reference)
	if err != nil {
		return nil, err
	}
	auths, err := d.CollectAuthenticators(name)
	if err != nil {
		return nil, err
	}
	return a.AuditFull(node, uint32(target.Index()), target.Log.All(), auths), nil
}

// BuildEvidence bundles what a failed audit of name used, for transfer to
// third parties.
func (d *Deployment) BuildEvidence(name string, res *Result) (*Evidence, error) {
	node := NodeID(name)
	target, ok := d.monitors[node]
	if !ok {
		return nil, fmt.Errorf("avm: unknown node %q", name)
	}
	auths, err := d.CollectAuthenticators(name)
	if err != nil {
		return nil, err
	}
	reason := "audit failed"
	if res != nil && res.Fault != nil {
		reason = res.Fault.Detail
	}
	return &Evidence{
		Accused: node, AccusedIdx: uint32(target.Index()), Reason: reason,
		Entries: target.Log.All(), Auths: auths, RNGSeed: d.seeds[node],
	}, nil
}

// VerifyEvidence lets a third party check an evidence bundle against its
// own reference image and key store. It returns nil if the evidence indeed
// demonstrates a fault.
func VerifyEvidence(ev *Evidence, keys *KeyStore, reference *Image, mode Mode) (*Result, error) {
	return audit.VerifyEvidence(ev, audit.VerifierConfig{
		Keys: keys, RefImage: reference,
		TamperEvident: mode.TamperEvident(), VerifySignatures: mode.Signs(),
	})
}

// DefaultCostModel returns the calibrated virtual-time cost model.
func DefaultCostModel() CostModel { return avmm.DefaultCostModel() }
