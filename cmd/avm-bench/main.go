// Command avm-bench regenerates every table and figure of the paper's
// evaluation (§6) on the simulation substrate and prints them in the
// paper's layout. See EXPERIMENTS.md for the paper-vs-measured record.
//
//	avm-bench                             # run everything at quick scale
//	avm-bench -run fig7                   # one experiment
//	avm-bench -full                       # longer runs, smoother numbers
//	avm-bench -run audit -json BENCH_audit.json
//	                                      # audit-engine throughput + JSON record
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
)

type runner struct {
	name string
	desc string
	run  func(experiments.Scale) (fmt.Stringer, error)
}

// tabler adapts experiment results to fmt.Stringer.
type tabler struct{ s string }

func (t tabler) String() string { return t.s }

func main() {
	runFlag := flag.String("run", "all", "experiment to run: all, table1, fig3, fig4, fig5, fig6, fig7, fig8, fig9, sec65, sec66, sec67, ablations, audit")
	full := flag.Bool("full", false, "use the longer full-scale runs")
	jsonPath := flag.String("json", "", "write the audit experiment's metrics as JSON to this path (e.g. BENCH_audit.json)")
	nofusion := flag.Bool("nofusion", false, "audit experiment: disable superinstruction fusion in every replay (ablation A/B; verdicts are unaffected)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the selected experiments to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		// Report failures without log.Fatalf: os.Exit here would skip the
		// still-pending StopCPUProfile defer and truncate the CPU profile.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize final live-set statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}

	scale := experiments.QuickScale
	if *full {
		scale = experiments.FullScale
	}

	runners := []runner{
		{"table1", "detectability of the 26-cheat catalog", func(sc experiments.Scale) (fmt.Stringer, error) {
			r, err := experiments.RunTable1(sc)
			if err != nil {
				return nil, err
			}
			return tabler{r.Table().String() + "\n" + r.DetailTable().String() +
				fmt.Sprintf("\nexternal (input-level) aimbot evades detection: %v (expected true, §5.4)\n", r.ExternalAimbotEvades)}, nil
		}},
		{"fig3", "log growth during a match", func(sc experiments.Scale) (fmt.Stringer, error) {
			r, err := experiments.RunFig3(sc)
			if err != nil {
				return nil, err
			}
			return tabler{r.Table().String()}, nil
		}},
		{"fig4", "log composition and compression", func(sc experiments.Scale) (fmt.Stringer, error) {
			r, err := experiments.RunFig4(sc)
			if err != nil {
				return nil, err
			}
			return tabler{r.Table().String()}, nil
		}},
		{"fig5", "ping round-trip times", func(sc experiments.Scale) (fmt.Stringer, error) {
			r, err := experiments.RunFig5(sc)
			if err != nil {
				return nil, err
			}
			return tabler{r.Table().String()}, nil
		}},
		{"fig6", "CPU utilization per hyperthread", func(sc experiments.Scale) (fmt.Stringer, error) {
			r, err := experiments.RunFig6(sc)
			if err != nil {
				return nil, err
			}
			return tabler{r.Table().String()}, nil
		}},
		{"fig7", "frame rate per configuration", func(sc experiments.Scale) (fmt.Stringer, error) {
			r, err := experiments.RunFig7(sc)
			if err != nil {
				return nil, err
			}
			return tabler{r.Table().String()}, nil
		}},
		{"fig8", "online auditing", func(sc experiments.Scale) (fmt.Stringer, error) {
			r, err := experiments.RunFig8(sc)
			if err != nil {
				return nil, err
			}
			return tabler{r.Table().String()}, nil
		}},
		{"fig9", "spot-checking cost", func(sc experiments.Scale) (fmt.Stringer, error) {
			r, err := experiments.RunFig9(sc)
			if err != nil {
				return nil, err
			}
			return tabler{r.Table().String()}, nil
		}},
		{"sec65", "frame cap and clock-delay optimization", func(sc experiments.Scale) (fmt.Stringer, error) {
			r, err := experiments.RunSec65(sc)
			if err != nil {
				return nil, err
			}
			return tabler{r.Table().String()}, nil
		}},
		{"sec66", "audit pipeline timing", func(sc experiments.Scale) (fmt.Stringer, error) {
			r, err := experiments.RunSec66(sc)
			if err != nil {
				return nil, err
			}
			return tabler{r.Table().String()}, nil
		}},
		{"sec67", "network traffic", func(sc experiments.Scale) (fmt.Stringer, error) {
			r, err := experiments.RunSec67(sc)
			if err != nil {
				return nil, err
			}
			return tabler{r.Table().String()}, nil
		}},
		{"audit", "audit-engine throughput: serial vs parallel replay, merkle, verify", func(sc experiments.Scale) (fmt.Stringer, error) {
			r, err := experiments.RunAuditBenchWith(sc, experiments.AuditBenchOptions{DisableFusion: *nofusion})
			if err != nil {
				return nil, err
			}
			if *jsonPath != "" {
				blob, err := json.MarshalIndent(r, "", "  ")
				if err != nil {
					return nil, err
				}
				if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
					return nil, err
				}
				fmt.Printf("(wrote %s)\n", *jsonPath)
			}
			return tabler{r.Table().String()}, nil
		}},
		{"ablations", "design-choice ablations", func(sc experiments.Scale) (fmt.Stringer, error) {
			var b strings.Builder
			chain, err := experiments.RunAblationChain(sc)
			if err != nil {
				return nil, err
			}
			b.WriteString(chain.Table().String() + "\n")
			snaps, err := experiments.RunAblationSnapshots(sc)
			if err != nil {
				return nil, err
			}
			b.WriteString(snaps.Table().String() + "\n")
			lms, err := experiments.RunAblationLandmarks(sc)
			if err != nil {
				return nil, err
			}
			b.WriteString(lms.Table().String() + "\n")
			partial, err := experiments.RunAblationPartial(sc)
			if err != nil {
				return nil, err
			}
			b.WriteString(partial.Table().String())
			return tabler{b.String()}, nil
		}},
	}

	selected := strings.Split(*runFlag, ",")
	want := func(name string) bool {
		for _, s := range selected {
			if s == "all" || s == name {
				return true
			}
		}
		return false
	}
	ran := 0
	for _, r := range runners {
		if !want(r.name) {
			continue
		}
		ran++
		fmt.Printf("### %s — %s\n\n", r.name, r.desc)
		start := time.Now()
		out, err := r.run(scale)
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		fmt.Println(out)
		fmt.Printf("(%s completed in %v)\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *runFlag)
		os.Exit(2)
	}
}
