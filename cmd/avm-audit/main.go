// Command avm-audit checks a recording produced by avm-run: it rebuilds the
// reference image for the named node, decompresses the log, verifies it
// against the collected authenticators, runs the syntactic check, and
// replays the execution — the full audit pipeline of §4.5.
//
//	avm-audit -dir /tmp/match1 -node player2
//	avm-audit -dir /tmp/match1            # audit every node
//	avm-audit -dir /tmp/match1 -stream    # streaming pipeline, bounded memory
//
// With -stream the log is audited straight from the compressed container:
// decoding, chain verification and replay run as overlapped stages, and at
// most -window decoded entries are resident at once — the mode to use for
// multi-hour logs. The verdict is identical to the materializing pipeline.
package main

import (
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/dbapp"
	"repro/internal/game"
	"repro/internal/logcomp"
	"repro/internal/sig"
	"repro/internal/tevlog"
	"repro/internal/vm"
)

// Meta mirrors cmd/avm-run's metadata format.
type Meta struct {
	Scenario string            `json:"scenario"`
	Seed     uint64            `json:"seed"`
	Players  int               `json:"players"`
	Nodes    map[string]int    `json:"nodes"`
	RNGSeeds map[string]uint64 `json:"rng_seeds"`
}

// referenceImage rebuilds the trusted image for a node from the scenario's
// deterministic guest sources — the auditor's own copy, never the recorded
// machine's.
func referenceImage(meta *Meta, node string) (*vm.Image, error) {
	switch meta.Scenario {
	case "game":
		if node == "server" {
			return game.BuildServer()
		}
		idx, ok := meta.Nodes[node]
		if !ok {
			return nil, fmt.Errorf("unknown node %q", node)
		}
		return game.BuildClient(idx, game.BuildOptions{})
	case "db":
		if node == "db-server" {
			return dbapp.BuildServer()
		}
		return dbapp.BuildClient()
	}
	return nil, fmt.Errorf("unknown scenario %q", meta.Scenario)
}

// rebuildKeys regenerates the deployment's public keys. Keys are
// deterministic per scenario seed, so the auditor derives the same
// verifiers the machines used; in a real deployment these would come from
// the certificate authority instead.
func rebuildKeys(meta *Meta) *sig.KeyStore {
	keys := sig.NewKeyStore()
	for node := range meta.Nodes {
		signer := sig.SizedSigner{Node: sig.NodeID(node), Size: sig.PaperSigBytes}
		keys.Add(signer.Public())
	}
	return keys
}

func main() {
	dir := flag.String("dir", "avm-run-out", "directory written by avm-run")
	nodeFlag := flag.String("node", "", "node to audit (default: all)")
	stream := flag.Bool("stream", false, "audit straight from the compressed log (decode ∥ chain-verify ∥ replay, bounded memory)")
	window := flag.Int("window", audit.DefaultStreamWindow, "streaming mode: max decoded entries resident at once")
	flag.Parse()

	metaBytes, err := os.ReadFile(filepath.Join(*dir, "meta.json"))
	if err != nil {
		log.Fatal(err)
	}
	var meta Meta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		log.Fatal(err)
	}
	keys := rebuildKeys(&meta)

	var nodes []string
	if *nodeFlag != "" {
		nodes = []string{*nodeFlag}
	} else {
		for n := range meta.Nodes {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
	}

	faults := 0
	for _, node := range nodes {
		compressed, err := os.ReadFile(filepath.Join(*dir, node+".log"))
		if err != nil {
			log.Fatal(err)
		}
		var auths []tevlog.Authenticator
		authFile, err := os.Open(filepath.Join(*dir, node+".auths"))
		if err != nil {
			log.Fatal(err)
		}
		if err := gob.NewDecoder(authFile).Decode(&auths); err != nil {
			log.Fatalf("decoding %s authenticators: %v", node, err)
		}
		if err := authFile.Close(); err != nil {
			log.Fatal(err)
		}
		ref, err := referenceImage(&meta, node)
		if err != nil {
			log.Fatal(err)
		}
		a := &audit.Auditor{
			Keys: keys, RefImage: ref, RNGSeed: meta.RNGSeeds[node],
			TamperEvident: true, VerifySignatures: true,
		}
		start := time.Now()
		var res *audit.Result
		entryCount := 0
		if *stream {
			// Recordings carry no snapshot store, so the stream replays a
			// single boot epoch — decode, chain verification and replay
			// still overlap, with at most -window entries resident.
			var sstats audit.StreamStats
			res, sstats = a.AuditStream(sig.NodeID(node), uint32(meta.Nodes[node]), compressed, auths,
				audit.StreamOptions{Window: *window})
			entryCount = sstats.Entries
		} else {
			entries, err := logcomp.DecompressEntries(compressed)
			if err != nil {
				log.Fatalf("decompressing %s log: %v", node, err)
			}
			if err := tevlog.Rechain(tevlog.Hash{}, entries); err != nil {
				log.Fatalf("rechaining %s log: %v", node, err)
			}
			entryCount = len(entries)
			res = a.AuditFull(sig.NodeID(node), uint32(meta.Nodes[node]), entries, auths)
		}
		wall := time.Since(start).Round(time.Millisecond)
		if res.Passed {
			fmt.Printf("%-10s PASSED in %-8v (%d entries, %d instructions replayed, %d sends matched)\n",
				node, wall, entryCount, res.Replay.Instructions, res.Replay.SendsMatched)
		} else {
			faults++
			fmt.Printf("%-10s FAULT  in %-8v — %s (%s check, entry %d)\n",
				node, wall, res.Fault.Detail, res.Fault.Check, res.Fault.EntrySeq)
		}
	}
	if faults > 0 {
		os.Exit(1)
	}
}
