// Command avm-audit checks a recording produced by avm-run: it rebuilds the
// reference image for the named node, decompresses the log, verifies it
// against the collected authenticators, runs the syntactic check, and
// replays the execution — the full audit pipeline of §4.5.
//
//	avm-audit -dir /tmp/match1 -node player2
//	avm-audit -dir /tmp/match1            # audit every node
//	avm-audit -dir /tmp/match1 -stream    # streaming pipeline, bounded memory
//
// With -stream the log is audited straight from the compressed container:
// decoding, chain verification and replay run as overlapped stages, and at
// most -window decoded entries are resident at once — the mode to use for
// multi-hour logs. The verdict is identical to the materializing pipeline.
//
// # Distributed auditing
//
// The replay stage can be fanned out over remote workers:
//
//	avm-audit -serve -listen 127.0.0.1:9100          # scenario-agnostic worker
//	avm-audit -dir /tmp/match1 -dispatch 127.0.0.1:9100,127.0.0.1:9101
//
// A worker holds no recording, no keys and no guest sources — the
// coordinator ships the reference configuration and self-contained epoch
// jobs (verified start state + entry run) and merges the verdicts, which
// are byte-identical to a local audit. Workers are untrusted: the
// coordinator root-verifies every start state before dispatch and
// re-replays a -spot fraction of epochs locally. Recordings that carry
// snapshots (avm-run writes <node>.snaps) dispatch one job per
// inter-snapshot epoch; without them the log ships as a single boot epoch.
//
// # Continuous auditing
//
// -coordinate runs the long-lived coordinator service instead of the
// one-shot dispatcher: every node's log is audited concurrently through
// one shared epoch queue and one multiplexed connection per worker, with
// heartbeat liveness, pipelined jobs, retry with exponential backoff,
// straggler hedging, and graceful degradation to local replay when the
// fleet is empty (disable with -local-fallback=false to fail instead,
// exit 2):
//
//	avm-audit -dir /tmp/match1 -coordinate 127.0.0.1:9100,127.0.0.1:9101
//
// Workers may come and go mid-audit; a worker that received SIGINT or
// SIGTERM drains gracefully — it finishes in-flight epochs, refuses new
// jobs so the coordinator re-dispatches them elsewhere, and exits 0. A
// second signal during the drain exits immediately (still 0).
//
// With -journal <dir> the coordinator keeps a write-ahead journal of its
// epoch queue; a coordinator killed mid-audit and restarted with the same
// -journal resumes, re-dispatching only the epochs without durable
// verdicts and producing byte-identical results. With -register-listen
// the coordinator also accepts worker self-registrations, and workers run
//
//	avm-audit -serve -register <coordinator-registration-addr>
//
// to join the fleet on their own (and rejoin a restarted coordinator).
//
// # Exit codes
//
// avm-audit exits with stable codes so scripts and CI can branch on the
// outcome without parsing output:
//
//	0  every audited log passed
//	1  at least one fault was detected (the machine misbehaved)
//	2  the audit itself could not be completed (bad recording, I/O or
//	   transport failure, unreachable workers)
package main

import (
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/archive"
	"repro/internal/audit"
	"repro/internal/dbapp"
	"repro/internal/game"
	"repro/internal/logcomp"
	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
	"repro/internal/vm"
)

// Exit codes, per the command documentation.
const (
	exitClean     = 0
	exitFault     = 1
	exitAuditFail = 2
)

// Meta mirrors cmd/avm-run's metadata format.
type Meta struct {
	Scenario string            `json:"scenario"`
	Seed     uint64            `json:"seed"`
	Players  int               `json:"players"`
	Nodes    map[string]int    `json:"nodes"`
	RNGSeeds map[string]uint64 `json:"rng_seeds"`
}

// referenceImage rebuilds the trusted image for a node from the scenario's
// deterministic guest sources — the auditor's own copy, never the recorded
// machine's.
func referenceImage(meta *Meta, node string) (*vm.Image, error) {
	switch meta.Scenario {
	case "game":
		if node == "server" {
			return game.BuildServer()
		}
		idx, ok := meta.Nodes[node]
		if !ok {
			return nil, fmt.Errorf("unknown node %q", node)
		}
		return game.BuildClient(idx, game.BuildOptions{})
	case "db":
		if node == "db-server" {
			return dbapp.BuildServer()
		}
		return dbapp.BuildClient()
	}
	return nil, fmt.Errorf("unknown scenario %q", meta.Scenario)
}

// rebuildKeys regenerates the deployment's public keys. Keys are
// deterministic per scenario seed, so the auditor derives the same
// verifiers the machines used; in a real deployment these would come from
// the certificate authority instead.
func rebuildKeys(meta *Meta) *sig.KeyStore {
	keys := sig.NewKeyStore()
	for node := range meta.Nodes {
		signer := sig.SizedSigner{Node: sig.NodeID(node), Size: sig.PaperSigBytes}
		keys.Add(signer.Public())
	}
	return keys
}

// openArchive resolves the -archive flag: "auto" opens <dir>/archive when
// avm-run wrote one (nil otherwise), "off" disables the archive path, and
// anything else is an explicit archive directory.
func openArchive(dir, flagVal string) (*archive.Archive, error) {
	switch flagVal {
	case "off":
		return nil, nil
	case "auto":
		p := filepath.Join(dir, "archive")
		if _, err := os.Stat(filepath.Join(p, archive.ManifestName)); err != nil {
			return nil, nil
		}
		return archive.Open(p)
	default:
		return archive.Open(flagVal)
	}
}

// archiveSnapshots returns Materialize and DeltaSource closures folding
// states out of the archive's verified snapshot segments, or nils when
// the node was archived without snapshots.
func archiveSnapshots(arc *archive.Archive, node string) (func(snapIdx uint32) (*snapshot.Restored, error), func(k uint32) (*snapshot.Delta, error), error) {
	n, err := arc.Snapshots(node)
	if err != nil || n == 0 {
		return nil, nil, err
	}
	src, err := arc.IncrementSource(node)
	if err != nil {
		return nil, nil, err
	}
	return func(snapIdx uint32) (*snapshot.Restored, error) {
			return snapshot.MaterializeFrom(src, int(snapIdx))
		}, func(k uint32) (*snapshot.Delta, error) {
			return snapshot.DeltaFrom(src, int(k))
		}, nil
}

// loadSnapshots returns Materialize and DeltaSource closures over the
// node's persisted snapshot store (avm-run writes one per node when
// snapshots were taken), or nils when the recording carries none.
func loadSnapshots(dir, node string) (func(snapIdx uint32) (*snapshot.Restored, error), func(k uint32) (*snapshot.Delta, error), error) {
	f, err := os.Open(filepath.Join(dir, node+".snaps"))
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var sf snapshot.StoreFile
	if err := gob.NewDecoder(f).Decode(&sf); err != nil {
		return nil, nil, fmt.Errorf("decoding %s snapshots: %w", node, err)
	}
	st := sf.Restore()
	return func(snapIdx uint32) (*snapshot.Restored, error) {
			return st.Materialize(int(snapIdx))
		}, func(k uint32) (*snapshot.Delta, error) {
			return st.Delta(int(k))
		}, nil
}

// loadEntriesAndSnapshots loads a node's chain-verified entry slice and
// snapshot closures for the materializing engines: from the archive's
// verified segments when one is open (compressed is then ignored),
// otherwise by decompressing the flat container and opening the gob
// snapshot store.
func loadEntriesAndSnapshots(arc *archive.Archive, dir, node string, compressed []byte) ([]tevlog.Entry, func(snapIdx uint32) (*snapshot.Restored, error), func(k uint32) (*snapshot.Delta, error), error) {
	if arc != nil {
		entries, err := arc.ReadLog(node)
		if err != nil {
			return nil, nil, nil, err
		}
		materialize, deltaSrc, err := archiveSnapshots(arc, node)
		return entries, materialize, deltaSrc, err
	}
	entries, err := logcomp.DecompressEntries(compressed)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("decompressing %s log: %w", node, err)
	}
	if err := tevlog.Rechain(tevlog.Hash{}, entries); err != nil {
		return nil, nil, nil, fmt.Errorf("rechaining %s log: %w", node, err)
	}
	materialize, deltaSrc, err := loadSnapshots(dir, node)
	return entries, materialize, deltaSrc, err
}

// fail reports an audit-infrastructure failure (exit code 2).
func fail(format string, args ...interface{}) int {
	fmt.Fprintf(os.Stderr, "avm-audit: "+format+"\n", args...)
	return exitAuditFail
}

func main() { os.Exit(run()) }

func run() int {
	dir := flag.String("dir", "avm-run-out", "directory written by avm-run")
	nodeFlag := flag.String("node", "", "node to audit (default: all)")
	stream := flag.Bool("stream", false, "audit straight from the compressed log (decode ∥ chain-verify ∥ replay, bounded memory)")
	window := flag.Int("window", audit.DefaultStreamWindow, "streaming mode: max decoded entries resident at once")
	serve := flag.Bool("serve", false, "run as a replay worker instead of auditing: accept epoch jobs from a coordinator")
	listen := flag.String("listen", "127.0.0.1:0", "worker mode: address to listen on")
	dispatch := flag.String("dispatch", "", "comma-separated worker addresses; fan the replay stage out over them")
	coordinate := flag.String("coordinate", "", "comma-separated worker addresses; audit every node concurrently through the long-running coordinator service")
	spot := flag.Float64("spot", 0.1, "dispatch mode: fraction of epochs the coordinator re-replays locally to catch lying workers")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "dispatch mode: straggler deadline before an epoch is re-dispatched")
	pipeline := flag.Int("pipeline", 0, "coordinate mode: epoch jobs kept in flight per worker connection (0 = default)")
	hedgeAfter := flag.Duration("hedge-after", 0, "coordinate mode: straggler hedge delay (0 = job-timeout/4, negative disables hedging)")
	localFallback := flag.Bool("local-fallback", true, "coordinate mode: replay locally when no workers are live instead of failing")
	delta := flag.Bool("delta", false, "dispatch/coordinate mode: ship epoch jobs as proof-carrying dirty-page deltas after the first full state per worker connection")
	nofusion := flag.Bool("nofusion", false, "disable superinstruction fusion in the replay interpreter (ablation; verdicts are unaffected)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "worker mode: max time to finish in-flight epochs after SIGINT/SIGTERM")
	journalDir := flag.String("journal", "", "coordinate mode: directory for the write-ahead epoch journal; a restarted coordinator resumes from it instead of re-auditing durable epochs")
	registerListen := flag.String("register-listen", "", "coordinate mode: address to accept worker self-registrations on (workers run -serve -register <this addr>)")
	register := flag.String("register", "", "worker mode: coordinator registration address to announce this worker to (redials with backoff if the coordinator restarts)")
	chaosHang := flag.Bool("chaos-hang", false, "worker mode: accept every job and never reply (fault-injection for drain and timeout testing)")
	archiveFlag := flag.String("archive", "auto", `disk archive to audit from: "auto" uses <dir>/archive when avm-run wrote one, "off" forces the flat files, anything else is an archive directory`)
	flag.Parse()

	if *serve {
		return serveWorker(*listen, *drainTimeout, *register, *chaosHang)
	}

	metaBytes, err := os.ReadFile(filepath.Join(*dir, "meta.json"))
	if err != nil {
		return fail("%v", err)
	}
	var meta Meta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return fail("%v", err)
	}
	keys := rebuildKeys(&meta)

	// Segments, snapshots and epoch jobs are read from the disk archive
	// when one is available: entry runs and increments come back verified
	// against the archived hashes, and the stream engine never
	// materializes the log at all.
	arc, err := openArchive(*dir, *archiveFlag)
	if err != nil {
		return fail("%v", err)
	}
	if arc != nil {
		defer arc.Close()
	}

	var nodes []string
	if *nodeFlag != "" {
		nodes = []string{*nodeFlag}
	} else {
		for n := range meta.Nodes {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
	}

	if *coordinate != "" || *registerListen != "" {
		var addrs []string
		for _, a := range strings.Split(*coordinate, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		return runCoordinated(arc, *dir, &meta, keys, nodes, addrs, *journalDir, *registerListen,
			*pipeline, *spot, *jobTimeout, *hedgeAfter, *localFallback, *delta, *nofusion)
	}

	var backend *audit.TCPBackend
	if *dispatch != "" {
		backend = &audit.TCPBackend{
			Addrs:      strings.Split(*dispatch, ","),
			JobTimeout: *jobTimeout,
		}
	}

	faults := 0
	for _, node := range nodes {
		var compressed []byte
		if arc == nil {
			var err error
			compressed, err = os.ReadFile(filepath.Join(*dir, node+".log"))
			if err != nil {
				return fail("%v", err)
			}
		}
		var auths []tevlog.Authenticator
		authFile, err := os.Open(filepath.Join(*dir, node+".auths"))
		if err != nil {
			return fail("%v", err)
		}
		if err := gob.NewDecoder(authFile).Decode(&auths); err != nil {
			return fail("decoding %s authenticators: %v", node, err)
		}
		if err := authFile.Close(); err != nil {
			return fail("%v", err)
		}
		ref, err := referenceImage(&meta, node)
		if err != nil {
			return fail("%v", err)
		}
		a := &audit.Auditor{
			Keys: keys, RefImage: ref, RNGSeed: meta.RNGSeeds[node],
			TamperEvident: true, VerifySignatures: true,
			DisableFusion: *nofusion,
		}
		// Every mode routes through the unified Audit entry point: the
		// flags select an Engine and fill one AuditRequest.
		req := audit.AuditRequest{Node: sig.NodeID(node), NodeIdx: uint32(meta.Nodes[node])}
		start := time.Now()
		entryCount := 0
		switch {
		case backend != nil:
			// Epoch jobs are derived from the archive's entry runs and
			// snapshot segments when one is present — the offline-dispatch
			// read path that never touches the flat files.
			entries, materialize, deltaSrc, err := loadEntriesAndSnapshots(arc, *dir, node, compressed)
			if err != nil {
				return fail("%v", err)
			}
			entryCount = len(entries)
			req.Engine = audit.EngineDist
			req.Backend = backend
			req.Entries, req.Auths = entries, auths
			req.Options = audit.EngineOptions{
				Materialize:         materialize,
				DeltaSource:         deltaSrc,
				DeltaJobs:           *delta,
				SpotRecheckFraction: *spot,
				SpotRecheckSeed:     meta.Seed,
			}
		case *stream:
			// Streaming straight from the container — or, with an
			// archive, epoch segments verified and decoded from disk one
			// at a time; with persisted snapshots the stream router splits
			// epochs, otherwise it replays a single boot epoch — decode,
			// chain verification and replay still overlap, with at most
			// -window entries resident.
			var materialize func(snapIdx uint32) (*snapshot.Restored, error)
			var err error
			if arc != nil {
				req.Source, err = arc.EntrySource(node)
				if err != nil {
					return fail("%v", err)
				}
				materialize, _, err = archiveSnapshots(arc, node)
			} else {
				req.Compressed = compressed
				materialize, _, err = loadSnapshots(*dir, node)
			}
			if err != nil {
				return fail("%v", err)
			}
			req.Engine = audit.EngineStream
			req.Auths = auths
			req.Options = audit.EngineOptions{Window: *window, Materialize: materialize}
		default:
			entries, _, _, err := loadEntriesAndSnapshots(arc, *dir, node, compressed)
			if err != nil {
				return fail("%v", err)
			}
			entryCount = len(entries)
			req.Engine = audit.EngineSerial
			req.Entries, req.Auths = entries, auths
		}
		res, astats, err := a.Audit(req)
		if err != nil {
			return fail("auditing %s: %v", node, err)
		}
		extra := ""
		switch req.Engine {
		case audit.EngineDist:
			dstats := astats.Dist
			extra = fmt.Sprintf(", %d epochs over %d workers, %d re-dispatched, %d spot-rechecked, job bytes %d full + %d delta (%d delta jobs, %d fallbacks)",
				dstats.Epochs, len(backend.Addrs), dstats.Redispatches, dstats.SpotRechecked,
				dstats.WireBytesFull, dstats.WireBytesDelta, dstats.DeltaJobsShipped, dstats.DeltaFallbacks)
		case audit.EngineStream:
			entryCount = astats.Stream.Entries
		}
		wall := time.Since(start).Round(time.Millisecond)
		if res.Passed {
			fmt.Printf("%-10s PASSED in %-8v (%d entries, %d instructions replayed, %d sends matched%s)\n",
				node, wall, entryCount, res.Replay.Instructions, res.Replay.SendsMatched, extra)
		} else {
			faults++
			fmt.Printf("%-10s FAULT  in %-8v — %s (%s check, entry %d%s)\n",
				node, wall, res.Fault.Detail, res.Fault.Check, res.Fault.EntrySeq, extra)
		}
	}
	if faults > 0 {
		return exitFault
	}
	return exitClean
}

// nodeRecording is one node's loaded, chain-verified recording plus the
// auditor configured for it — everything the coordinator needs.
type nodeRecording struct {
	node        string
	idx         uint32
	entries     []tevlog.Entry
	auths       []tevlog.Authenticator
	auditor     *audit.Auditor
	materialize func(snapIdx uint32) (*snapshot.Restored, error)
	deltaSource func(k uint32) (*snapshot.Delta, error)
}

// loadNodeRecording reads and verifies one node's log, authenticators and
// snapshot store — epoch segments and increments from the archive when
// one is open, flat files otherwise.
func loadNodeRecording(arc *archive.Archive, dir string, meta *Meta, keys *sig.KeyStore, node string) (*nodeRecording, error) {
	var compressed []byte
	if arc == nil {
		var err error
		compressed, err = os.ReadFile(filepath.Join(dir, node+".log"))
		if err != nil {
			return nil, err
		}
	}
	entries, materialize, deltaSrc, err := loadEntriesAndSnapshots(arc, dir, node, compressed)
	if err != nil {
		return nil, err
	}
	var auths []tevlog.Authenticator
	authFile, err := os.Open(filepath.Join(dir, node+".auths"))
	if err != nil {
		return nil, err
	}
	if err := gob.NewDecoder(authFile).Decode(&auths); err != nil {
		authFile.Close()
		return nil, fmt.Errorf("decoding %s authenticators: %w", node, err)
	}
	if err := authFile.Close(); err != nil {
		return nil, err
	}
	ref, err := referenceImage(meta, node)
	if err != nil {
		return nil, err
	}
	return &nodeRecording{
		node: node, idx: uint32(meta.Nodes[node]),
		entries: entries, auths: auths, materialize: materialize, deltaSource: deltaSrc,
		auditor: &audit.Auditor{
			Keys: keys, RefImage: ref, RNGSeed: meta.RNGSeeds[node],
			TamperEvident: true, VerifySignatures: true,
		},
	}, nil
}

// runCoordinated audits every node concurrently through one long-running
// coordinator: a shared epoch queue, one multiplexed connection per
// worker, heartbeat liveness, pipelined dispatch, retry with backoff and
// straggler hedging. Workers may join, leave or crash mid-audit; with
// -local-fallback (the default) an empty fleet degrades to local replay.
func runCoordinated(arc *archive.Archive, dir string, meta *Meta, keys *sig.KeyStore, nodes, addrs []string, journalDir, registerListen string,
	pipeline int, spot float64, jobTimeout, hedgeAfter time.Duration, localFallback, delta, nofusion bool) int {
	recs := make([]*nodeRecording, 0, len(nodes))
	for _, node := range nodes {
		rec, err := loadNodeRecording(arc, dir, meta, keys, node)
		if err != nil {
			return fail("%v", err)
		}
		rec.auditor.DisableFusion = nofusion
		recs = append(recs, rec)
	}

	var journal *audit.Journal
	if journalDir != "" {
		var err error
		journal, err = audit.OpenJournal(journalDir)
		if err != nil {
			return fail("opening journal: %v", err)
		}
		defer journal.Close()
	}

	coord := audit.NewCoordinator(audit.CoordinatorConfig{
		Pipeline:             pipeline,
		JobTimeout:           jobTimeout,
		HedgeAfter:           hedgeAfter,
		DisableLocalFallback: !localFallback,
		Journal:              journal,
	})
	defer coord.Close()
	for _, a := range addrs {
		coord.AddWorker(a)
	}
	if registerListen != "" {
		rl, err := net.Listen("tcp", registerListen)
		if err != nil {
			return fail("registration listen %s: %v", registerListen, err)
		}
		// The smoke harness parses this banner to learn the bound port.
		fmt.Printf("avm-audit: registration listener on %s\n", rl.Addr())
		go func() { _ = coord.ServeRegistrations(rl) }()
	}

	type outcome struct {
		res    *audit.Result
		dstats audit.DistStats
		wall   time.Duration
		err    error
	}
	start := time.Now()
	outs := make([]outcome, len(recs))
	var wg sync.WaitGroup
	for i, rec := range recs {
		wg.Add(1)
		go func(i int, rec *nodeRecording) {
			defer wg.Done()
			t0 := time.Now()
			res, dstats, err := coord.Audit(rec.auditor, sig.NodeID(rec.node), rec.idx, rec.entries, rec.auths,
				audit.DistOptions{EngineOptions: audit.EngineOptions{
					Materialize:         rec.materialize,
					DeltaSource:         rec.deltaSource,
					DeltaJobs:           delta,
					SpotRecheckFraction: spot,
					SpotRecheckSeed:     meta.Seed,
				}})
			outs[i] = outcome{res: res, dstats: dstats, wall: time.Since(t0).Round(time.Millisecond), err: err}
		}(i, rec)
	}
	wg.Wait()
	wall := time.Since(start)

	code := exitClean
	faults := 0
	for i, rec := range recs {
		out := outs[i]
		if out.err != nil {
			code = fail("auditing %s: %v", rec.node, out.err)
			continue
		}
		extra := fmt.Sprintf(", %d epochs, %d re-dispatched, %d spot-rechecked, job bytes %d full + %d delta (%d delta jobs, %d fallbacks)",
			out.dstats.Epochs, out.dstats.Redispatches, out.dstats.SpotRechecked,
			out.dstats.WireBytesFull, out.dstats.WireBytesDelta, out.dstats.DeltaJobsShipped, out.dstats.DeltaFallbacks)
		if out.res.Passed {
			fmt.Printf("%-10s PASSED in %-8v (%d entries, %d instructions replayed, %d sends matched%s)\n",
				rec.node, out.wall, len(rec.entries), out.res.Replay.Instructions, out.res.Replay.SendsMatched, extra)
		} else {
			faults++
			fmt.Printf("%-10s FAULT  in %-8v — %s (%s check, entry %d%s)\n",
				rec.node, out.wall, out.res.Fault.Detail, out.res.Fault.Check, out.res.Fault.EntrySeq, extra)
		}
	}
	fs := coord.Stats()
	util := 0.0
	if fs.WorkersRegistered > 0 && wall > 0 {
		util = float64(fs.BusyNs) / (float64(wall.Nanoseconds()) * float64(fs.WorkersRegistered))
	}
	fmt.Printf("fleet: %d/%d workers live, %d epochs done (%d local-fallback), %d retries, %d hedges, %d heartbeat timeouts, %d registrations (%d rejected), utilization %.2f\n",
		fs.WorkersLive, fs.WorkersRegistered, fs.EpochsDone, fs.LocalFallbackEpochs,
		fs.Retries, fs.Hedges, fs.HeartbeatTimeouts, fs.RegistrationsAccepted, fs.RegistrationsRejected, util)
	if journal != nil {
		fmt.Printf("journal: %d runs resumed, %d epochs skipped as durable, %d bytes\n",
			fs.RunsResumed, fs.EpochsSkippedDurable, fs.JournalBytes)
	}
	if code != exitClean {
		return code
	}
	if faults > 0 {
		return exitFault
	}
	return exitClean
}

// serveWorker runs the scenario-agnostic replay worker until killed.
// SIGINT and SIGTERM drain gracefully: the worker stops accepting work,
// refuses queued jobs so the coordinator re-dispatches them elsewhere,
// finishes what is already in flight (bounded by drainTimeout), and exits
// 0. A second signal during the drain is the operator insisting: the
// worker exits immediately, still 0 — the coordinator treats the cut
// connection like any worker crash and re-dispatches.
//
// With -register the worker announces itself to the coordinator's
// registration listener and re-announces (with capped backoff) whenever
// that connection drops, so it rejoins a restarted coordinator on its own.
func serveWorker(addr string, drainTimeout time.Duration, registerAddr string, chaosHang bool) int {
	w := &audit.EpochWorker{}
	if chaosHang {
		w.Chaos = &audit.ChaosPlan{Name: "hang-forever", HangRate: 1.0}
	}
	// Register the drain handler before announcing the address: a
	// supervisor may signal the instant it sees the banner.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigCh
		fmt.Printf("avm-audit: %v received, draining (finishing in-flight epochs)\n", s)
		go w.Drain(drainTimeout)
		s = <-sigCh
		fmt.Printf("avm-audit: %v received again, exiting now\n", s)
		os.Exit(exitClean)
	}()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fail("listen %s: %v", addr, err)
	}
	fmt.Printf("avm-audit: worker listening on %s\n", l.Addr())
	if registerAddr != "" {
		stop := make(chan struct{}) // lives until the process exits
		go audit.RegisterWorker(registerAddr, l.Addr().String(), stop, func(accepted bool, reason string) {
			if accepted {
				fmt.Printf("avm-audit: registered with coordinator %s\n", registerAddr)
			} else {
				fmt.Printf("avm-audit: registration rejected by %s: %s\n", registerAddr, reason)
			}
		})
	}
	if err := w.Serve(l); err != nil {
		return fail("serving: %v", err)
	}
	fmt.Println("avm-audit: worker drained, exiting")
	return exitClean
}
