// Command avm-keygen generates the deterministic RSA keypairs and
// administrator-signed certificates the AVMM protocol assumes every party
// holds (§4.1, assumption 3).
//
//	avm-keygen -node bob -ca admin -seed deployment-1
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"

	"repro/internal/sig"
)

func main() {
	node := flag.String("node", "node0", "principal to generate a keypair for")
	ca := flag.String("ca", "admin", "certificate authority principal")
	seed := flag.String("seed", "avm", "deterministic key-generation seed")
	bits := flag.Int("bits", sig.DefaultKeyBits, "RSA modulus size (min 1024; the paper's 768-bit keys are below crypto/rsa's modern minimum)")
	flag.Parse()

	caSigner, err := sig.GenerateRSA(sig.NodeID(*ca), *bits, *seed)
	if err != nil {
		log.Fatal(err)
	}
	nodeSigner, err := sig.GenerateRSA(sig.NodeID(*node), *bits, *seed)
	if err != nil {
		log.Fatal(err)
	}
	cert := sig.Issue(caSigner, nodeSigner.Public())

	fmt.Printf("node:        %s\n", *node)
	fmt.Printf("key size:    %d bits\n", *bits)
	fmt.Printf("public key:  %s\n", hex.EncodeToString(nodeSigner.Public().Marshal()))
	fmt.Printf("issuer:      %s\n", cert.Issuer)
	fmt.Printf("certificate: %s\n", hex.EncodeToString(cert.Sig))

	// Verify the certificate end to end, as a relying party would.
	verifier, err := sig.VerifyCertificate(caSigner.Public(), cert)
	if err != nil {
		log.Fatalf("certificate does not verify: %v", err)
	}
	msg := []byte("probe")
	if !verifier.Verify(msg, nodeSigner.Sign(msg)) {
		log.Fatal("round-trip signature check failed")
	}
	fmt.Println("verified:    certificate chain and signature round-trip OK")
}
