// Command avm-run records an accountable execution of one of the built-in
// scenarios and writes each machine's tamper-evident log, authenticators
// and snapshots to a directory that avm-audit can check later — the
// offline-audit workflow of §6.4 ("the log can be transferred to other
// players and replayed there ... after the game has finished").
//
//	avm-run -scenario game -seconds 20 -out /tmp/match1
//	avm-run -scenario game -cheat unlimited-ammo -out /tmp/match2
//	avm-run -scenario db -seconds 60 -out /tmp/dbrun
package main

import (
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/archive"
	"repro/internal/avmm"
	"repro/internal/dbapp"
	"repro/internal/game"
	"repro/internal/logcomp"
	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
)

// Meta describes a recorded run so the auditor can rebuild the reference
// configuration. It deliberately contains no log data: the reference images
// are rebuilt from the (deterministic) guest sources.
type Meta struct {
	Scenario string            `json:"scenario"`
	Seed     uint64            `json:"seed"`
	Seconds  uint64            `json:"seconds"`
	Players  int               `json:"players,omitempty"`
	Cheat    string            `json:"cheat,omitempty"` // recorded for reproducibility; auditors don't trust it
	Nodes    map[string]int    `json:"nodes"`           // node → network index
	RNGSeeds map[string]uint64 `json:"rng_seeds"`
}

func main() {
	scenario := flag.String("scenario", "game", "scenario to record: game or db")
	seconds := flag.Uint64("seconds", 15, "virtual seconds to run")
	seed := flag.Uint64("seed", 1, "deterministic scenario seed")
	cheat := flag.String("cheat", "", "cheat for player 2 (game scenario only)")
	out := flag.String("out", "avm-run-out", "output directory")
	noArchive := flag.Bool("noarchive", false, "skip writing the disk archive (out/archive); auditors then read the flat files")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	meta := Meta{
		Scenario: *scenario, Seed: *seed, Seconds: *seconds, Cheat: *cheat,
		Nodes: map[string]int{}, RNGSeeds: map[string]uint64{},
	}

	var monitors []*avmm.Monitor
	var collect func(node string) []tevlog.Authenticator

	switch *scenario {
	case "game":
		cfg := game.ScenarioConfig{
			Players: 3, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
			Seed: *seed, SnapshotEveryNs: 5_000_000_000, FakeSignatures: true,
		}
		if *cheat != "" {
			c, err := game.CatalogByName(*cheat)
			if err != nil {
				log.Fatal(err)
			}
			cfg.CheatPlayer = 2
			cfg.Cheat = c
		}
		meta.Players = cfg.Players
		s, err := game.NewScenario(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recording %d virtual seconds of fragfest (3 players + server) ...\n", *seconds)
		s.Run(*seconds * 1_000_000_000)
		monitors = append(monitors, s.Server)
		monitors = append(monitors, s.Players...)
		for _, m := range monitors {
			meta.RNGSeeds[string(m.Node())] = s.RNGSeedOf(m.Index())
		}
		collect = func(node string) []tevlog.Authenticator {
			a, err := s.CollectAuths(sig.NodeID(node))
			if err != nil {
				log.Fatal(err)
			}
			return a
		}
	case "db":
		s, err := dbapp.NewScenario(dbapp.ScenarioConfig{
			Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(), Seed: *seed,
			SnapshotEveryNs: 10_000_000_000, FakeSignatures: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recording %d virtual seconds of minisql ...\n", *seconds)
		s.Run(*seconds * 1_000_000_000)
		monitors = []*avmm.Monitor{s.Server, s.Client}
		meta.RNGSeeds["db-server"] = *seed + 500
		meta.RNGSeeds["db-client"] = *seed + 501
		collect = func(node string) []tevlog.Authenticator {
			if node == "db-server" {
				a, err := s.ServerAuths()
				if err != nil {
					log.Fatal(err)
				}
				return a
			}
			a := s.Server.AuthenticatorsFor("db-client")
			if s.Client.Log.Len() > 0 {
				head, err := s.Client.Log.LastAuthenticator()
				if err != nil {
					log.Fatal(err)
				}
				a = append(a, head)
			}
			return a
		}
	default:
		log.Fatalf("unknown scenario %q (want game or db)", *scenario)
	}

	// The disk archive is written alongside the flat files as the run's
	// segments become available: every snapshot increment and every epoch's
	// entry run lands as an authenticated, crc-indexed, fsync-batched
	// segment that avm-audit streams back without materializing the log.
	var arc *archive.Archive
	if !*noArchive {
		var err error
		if arc, err = archive.Open(filepath.Join(*out, "archive")); err != nil {
			log.Fatal(err)
		}
	}

	for _, mon := range monitors {
		node := string(mon.Node())
		meta.Nodes[node] = mon.Index()
		logPath := filepath.Join(*out, node+".log")
		compressed := logcomp.CompressEntries(mon.Log.All())
		if err := os.WriteFile(logPath, compressed, 0o644); err != nil {
			log.Fatal(err)
		}
		authPath := filepath.Join(*out, node+".auths")
		f, err := os.Create(authPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := gob.NewEncoder(f).Encode(collect(node)); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		if mon.Snaps != nil && mon.Snaps.Count() > 0 {
			// Persist the snapshot store so a dispatching auditor
			// (avm-audit -dispatch) can materialize epoch starting states
			// and fan the replay out; without it the log audits as a
			// single boot epoch.
			snapPath := filepath.Join(*out, node+".snaps")
			sf, err := os.Create(snapPath)
			if err != nil {
				log.Fatal(err)
			}
			if err := gob.NewEncoder(sf).Encode(mon.Snaps.File()); err != nil {
				log.Fatal(err)
			}
			if err := sf.Close(); err != nil {
				log.Fatal(err)
			}
		}
		if arc != nil {
			var sf *snapshot.StoreFile
			if mon.Snaps != nil && mon.Snaps.Count() > 0 {
				f := mon.Snaps.File()
				sf = &f
			}
			if err := arc.WriteRecording(node, mon.Log.All(), sf); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("  %-10s %6d entries → %8d bytes compressed (%s)\n",
			node, mon.Log.Len(), len(compressed), logPath)
	}
	if arc != nil {
		bytes := arc.Bytes()
		if err := arc.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  archive    %8d bytes authenticated segments (%s)\n",
			bytes, filepath.Join(*out, "archive"))
	}
	metaBytes, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(*out, "meta.json"), metaBytes, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s; audit with: avm-audit -dir %s -node <name>\n", *out, *out)
}
