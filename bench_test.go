// Package-level benchmarks regenerating every table and figure of the
// paper's evaluation (§6). Run them all with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableN/BenchmarkFigN executes the corresponding experiment
// driver and reports its headline quantity as custom metrics; the full
// paper-style table is printed via -v logs. Component micro-benchmarks
// (interpreter, hash chain, signatures, compression, replay) quantify the
// real wall cost of this implementation's building blocks.
package avm_test

import (
	"fmt"
	"net"
	"testing"

	auditpkg "repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/experiments"
	"repro/internal/game"
	"repro/internal/lang"
	"repro/internal/logcomp"
	"repro/internal/sig"
	"repro/internal/snapshot"
	"repro/internal/tevlog"
	"repro/internal/vm"
)

// benchScale keeps each figure bench in single-digit wall seconds.
var benchScale = experiments.QuickScale

func BenchmarkTable1_CheatDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(float64(res.Detectable), "cheats-detected")
			b.ReportMetric(float64(res.AnyImpl), "any-impl-class")
		}
	}
}

func BenchmarkFig3_LogGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(res.AVMMRate, "avmm-MB/min")
			b.ReportMetric(res.VMwareRate, "vmware-MB/min")
		}
	}
}

func BenchmarkFig4_LogComposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(res.TotalRate, "raw-MB/min")
			b.ReportMetric(res.CompressedRate, "compressed-MB/min")
		}
	}
}

func BenchmarkFig5_PingRTT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(res.Rows[0].MedianUs, "bare-rtt-us")
			b.ReportMetric(res.Rows[len(res.Rows)-1].MedianUs, "avmm-rtt-us")
		}
	}
}

func BenchmarkFig6_CPUUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(last.HT[0]*100, "daemon-HT0-%")
			b.ReportMetric(last.Avg*100, "avg-util-%")
		}
	}
}

func BenchmarkFig7_FrameRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(res.Rows[0].Avg, "bare-fps")
			b.ReportMetric(res.Rows[len(res.Rows)-1].Avg, "avmm-fps")
			b.ReportMetric(res.DropPct, "drop-%")
		}
	}
}

func BenchmarkFig8_OnlineAuditing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(res.Rows[0].AvgFPS, "fps-0audits")
			b.ReportMetric(res.Rows[2].AvgFPS, "fps-2audits")
		}
	}
}

func BenchmarkFig9_SpotChecking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(res.Rows[0].TimePct, "k1-time-%")
			b.ReportMetric(res.Rows[0].DataPct, "k1-data-%")
		}
	}
}

func BenchmarkSec65_FrameRateCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSec65(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(res.BlowupFactor, "cap-blowup-x")
			b.ReportMetric(res.OptRecovery, "opt-recovery-x")
		}
	}
}

func BenchmarkSec66_AuditPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSec66(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(float64(res.Semantic.Milliseconds()), "semantic-ms")
			b.ReportMetric(float64(res.Syntactic.Milliseconds()), "syntactic-ms")
		}
	}
}

func BenchmarkSec67_NetworkTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSec67(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(res.Rows[0].ServerKbps, "bare-kbps")
			b.ReportMetric(res.Rows[1].ServerKbps, "avmm-kbps")
		}
	}
}

func BenchmarkAblation_ChainBatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationChain(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
		}
	}
}

func BenchmarkAblation_Snapshots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationSnapshots(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(res.SavingsFactor, "incremental-savings-x")
		}
	}
}

func BenchmarkAblation_Landmarks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationLandmarks(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(res.OverheadFactor, "landmark-overhead-x")
		}
	}
}

// --- component micro-benchmarks ---

// machineRunMixes are small hand-assembled kernels, one per instruction
// mix, each an infinite loop so the benchmark meters pure interpreter
// throughput. Addresses: code at vm.CodeBase, scratch data at 32 KiB.
var machineRunMixes = []struct {
	name string
	prog []vm.Instr
}{
	{"alu", []vm.Instr{
		{Op: vm.OpAddi, Ra: 1, Rb: 1, Imm: 1},
		{Op: vm.OpMul, Ra: 2, Rb: 1, Rc: 1},
		{Op: vm.OpXor, Ra: 3, Rb: 2, Rc: 1},
		{Op: vm.OpShl, Ra: 4, Rb: 3, Rc: 1},
		{Op: vm.OpSub, Ra: 5, Rb: 4, Rc: 2},
		{Op: vm.OpOr, Ra: 6, Rb: 5, Rc: 3},
		{Op: vm.OpJmp, Imm: vm.CodeBase},
	}},
	{"branch", []vm.Instr{
		{Op: vm.OpAddi, Ra: 1, Rb: 1, Imm: 1},         // 0
		{Op: vm.OpAnd, Ra: 2, Rb: 1, Rc: 3},           // 1: r2 = r1 & 1
		{Op: vm.OpJz, Ra: 2, Imm: vm.CodeBase + 4*8},  // 2: taken every other lap
		{Op: vm.OpJnz, Ra: 3, Imm: vm.CodeBase + 4*8}, // 3: always taken (r3=1)
		{Op: vm.OpEq, Ra: 4, Rb: 1, Rc: 3},            // 4
		{Op: vm.OpJnz, Ra: 4, Imm: vm.CodeBase},       // 5: rarely taken
		{Op: vm.OpJmp, Imm: vm.CodeBase},              // 6
	}},
	{"mem", []vm.Instr{
		{Op: vm.OpStore, Ra: 8, Rb: 1},           // 0: mem[r8] = r1
		{Op: vm.OpLoad, Ra: 2, Rb: 8},            // 1: r2 = mem[r8]
		{Op: vm.OpPush, Ra: 2},                   // 2
		{Op: vm.OpPush, Ra: 1},                   // 3
		{Op: vm.OpPop, Ra: 4},                    // 4
		{Op: vm.OpPop, Ra: 5},                    // 5
		{Op: vm.OpStoreb, Ra: 8, Rb: 5, Imm: 64}, // 6
		{Op: vm.OpLoadb, Ra: 6, Rb: 8, Imm: 64},  // 7
		{Op: vm.OpJmp, Imm: vm.CodeBase},         // 8
	}},
}

// BenchmarkMachineRun meters the interpreter per instruction mix: the
// fused sprint loop, the sprint with fusion ablated, and the careful Step
// path — the ablations behind the predecode_speedup and fusion_speedup
// rows of BENCH_audit.json.
func BenchmarkMachineRun(b *testing.B) {
	for _, mix := range machineRunMixes {
		for _, mode := range []struct {
			name        string
			nopredecode bool
			nofusion    bool
		}{{"fused", false, false}, {"predecode", false, true}, {"step", true, false}} {
			b.Run(mix.name+"/"+mode.name, func(b *testing.B) {
				var code []byte
				for _, ins := range mix.prog {
					code = ins.Encode(code)
				}
				img := &vm.Image{Name: mix.name, Code: code, Entry: vm.CodeBase, MemSize: 64 * 1024}
				m, err := img.Boot(nil)
				if err != nil {
					b.Fatal(err)
				}
				m.DisablePredecode = mode.nopredecode
				m.DisableFusion = mode.nofusion
				m.Regs[3] = 1
				m.Regs[8] = 32 * 1024
				b.ResetTimer()
				m.RunUntil(m.ICount + uint64(b.N))
				if m.Halted {
					b.Fatalf("kernel halted: %v", m.FaultInfo)
				}
				b.ReportMetric(float64(m.ICount)/b.Elapsed().Seconds()/1e6, "Minstr/s")
			})
		}
	}
}

func BenchmarkVM_Interpreter(b *testing.B) {
	img, err := lang.Compile("spin", `
		func main() {
			var i = 0;
			var acc = 1;
			while (1) { acc = acc * 1103515245 + 12345; i = i + 1; }
		}
	`, lang.Options{MemSize: 64 * 1024})
	if err != nil {
		b.Fatal(err)
	}
	m, err := img.Boot(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	m.Run(uint64(b.N))
	b.ReportMetric(float64(m.ICount)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

func BenchmarkTevlog_Append(b *testing.B) {
	l := tevlog.New(sig.NullSigner{Node: "b"})
	content := make([]byte, 32)
	b.SetBytes(int64(len(content) + 13))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(tevlog.TypeNondet, content)
	}
}

func BenchmarkRSA_Sign(b *testing.B) {
	s := sig.MustGenerateRSA("b", sig.DefaultKeyBits, "bench")
	msg := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sign(msg)
	}
}

func BenchmarkRSA_Verify(b *testing.B) {
	s := sig.MustGenerateRSA("b", sig.DefaultKeyBits, "bench")
	msg := make([]byte, 64)
	signature := s.Sign(msg)
	v := s.Public()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !v.Verify(msg, signature) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkLogcomp_Compress(b *testing.B) {
	s, err := game.NewScenario(game.ScenarioConfig{
		Players: 2, Mode: avmm.ModeAVMMNoSig, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	s.Run(5_000_000_000)
	entries := s.Player(1).Log.All()
	raw := tevlog.MarshalSegment(entries)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logcomp.CompressEntries(entries)
	}
}

func BenchmarkReplay_GameSecond(b *testing.B) {
	// Wall cost of replaying one virtual second of recorded gameplay — the
	// quantity that determines whether online auditing keeps up (§6.11).
	// The match takes periodic snapshots so the parallel sub-benchmarks can
	// partition the log into epochs; "serial" is the plain single replay.
	s, err := game.NewScenario(game.ScenarioConfig{
		Players: 2, Mode: avmm.ModeAVMMNoSig, Seed: 1,
		SnapshotEveryNs: 600_000_000,
	})
	if err != nil {
		b.Fatal(err)
	}
	s.Run(5_000_000_000)
	audit := func(b *testing.B, run func() error) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if err := run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) {
		audit(b, func() error {
			res, err := s.AuditNode("player1")
			if err != nil {
				return err
			}
			if !res.Passed {
				return res.Fault
			}
			return nil
		})
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("parallel-%d", workers), func(b *testing.B) {
			audit(b, func() error {
				res, err := s.AuditNodeParallel("player1", workers)
				if err != nil {
					return err
				}
				if !res.Passed {
					return res.Fault
				}
				return nil
			})
		})
	}
	b.Run("stream-4", func(b *testing.B) {
		// Streaming pipeline: decode ∥ chain-verify ∥ replay from the
		// compressed container, default window.
		audit(b, func() error {
			res, _, err := s.AuditNodeStream("player1", 4, 0)
			if err != nil {
				return err
			}
			if !res.Passed {
				return res.Fault
			}
			return nil
		})
	})
	b.Run("dist-tcp-3", func(b *testing.B) {
		// Distributed dispatch over three loopback TCP workers: the full
		// wire round trip (materialized start states + entry runs out,
		// verdicts back) plus coordinator-side root verification and merge.
		var addrs []string
		for i := 0; i < 3; i++ {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			go auditpkg.ServeEpochWorker(l)
			addrs = append(addrs, l.Addr().String())
		}
		audit(b, func() error {
			res, _, err := s.AuditNodeDist("player1", auditpkg.DistOptions{
				Backend: &auditpkg.TCPBackend{Addrs: addrs},
			})
			if err != nil {
				return err
			}
			if !res.Passed {
				return res.Fault
			}
			return nil
		})
	})
}

// rootSink prevents the compiler from eliding the hashing work.
var rootSink [32]byte

func BenchmarkMerkleSnapshotRoot(b *testing.B) {
	m := vm.NewMachine(256*1024, nil)
	blob := m.CaptureStateRegisters()
	b.Run("serial", func(b *testing.B) {
		sh := snapshot.StateHasher{Workers: 1}
		b.SetBytes(int64(len(m.Mem)))
		for i := 0; i < b.N; i++ {
			rootSink = sh.RootOfState(m.Mem, blob, nil)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		var sh snapshot.StateHasher // default fan-out
		b.SetBytes(int64(len(m.Mem)))
		for i := 0; i < b.N; i++ {
			rootSink = sh.RootOfState(m.Mem, blob, nil)
		}
	})
}
