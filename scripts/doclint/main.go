// Command doclint enforces godoc discipline on the packages whose exported
// surface is documentation-bearing API: every exported top-level symbol —
// functions, methods on exported receivers, types, and exported names in
// const/var groups — must carry a doc comment, and a symbol's comment must
// mention the symbol by name in its first sentence (the godoc convention;
// "Deprecated:" markers are accepted as-is). It is a stdlib-only stand-in
// for the doc-comment checks of external linters, which this repo cannot
// vendor.
//
//	go run ./scripts/doclint ./internal/audit ./internal/snapshot ...
//
// Exit status 1 lists every violation; 0 means the surface is documented.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// violation is one undocumented or mis-documented exported symbol.
type violation struct {
	pos  token.Position
	what string
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package-dir> ...")
		os.Exit(2)
	}
	var violations []violation
	for _, dir := range os.Args[1:] {
		v, err := lintDir(strings.TrimPrefix(dir, "./"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		violations = append(violations, v...)
	}
	sort.Slice(violations, func(i, j int) bool {
		a, b := violations[i].pos, violations[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, v := range violations {
		fmt.Printf("%s:%d: %s\n", v.pos.Filename, v.pos.Line, v.what)
	}
	if len(violations) > 0 {
		fmt.Printf("doclint: %d undocumented exported symbol(s)\n", len(violations))
		os.Exit(1)
	}
}

// lintDir parses every non-test Go file in dir and collects violations.
func lintDir(dir string) ([]violation, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []violation
	for _, pkg := range pkgs {
		for path, file := range pkg.Files {
			out = append(out, lintFile(fset, filepath.ToSlash(path), file)...)
		}
	}
	return out, nil
}

// lintFile checks one file's exported top-level declarations.
func lintFile(fset *token.FileSet, path string, file *ast.File) []violation {
	var out []violation
	report := func(pos token.Pos, format string, args ...interface{}) {
		out = append(out, violation{pos: fset.Position(pos), what: fmt.Sprintf(format, args...)})
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			name := d.Name.Name
			if !ast.IsExported(name) || !exportedRecv(d) {
				continue
			}
			label := name
			if d.Recv != nil {
				label = recvTypeName(d.Recv) + "." + name
			}
			checkDoc(report, d.Pos(), d.Doc, name, "func "+label)
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if !ast.IsExported(ts.Name.Name) {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = d.Doc
					}
					checkDoc(report, ts.Pos(), doc, ts.Name.Name, "type "+ts.Name.Name)
				}
			case token.CONST, token.VAR:
				kind := "const"
				if d.Tok == token.VAR {
					kind = "var"
				}
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					for _, n := range vs.Names {
						if !ast.IsExported(n.Name) {
							continue
						}
						// A group comment, a per-spec doc, or a trailing
						// line comment each documents the name.
						if d.Doc == nil && vs.Doc == nil && vs.Comment == nil {
							report(n.Pos(), "%s %s has no doc comment", kind, n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// exportedRecv reports whether a method's receiver type is exported (or the
// decl is a plain function). Methods on unexported types are internal
// surface and exempt.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	return ast.IsExported(recvTypeName(d.Recv))
}

// recvTypeName extracts the receiver's base type name.
func recvTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.IndexExpr:
			t = u.X
		case *ast.Ident:
			return u.Name
		default:
			return ""
		}
	}
}

// checkDoc verifies a symbol's doc comment exists and names the symbol in
// its first sentence.
func checkDoc(report func(token.Pos, string, ...interface{}), pos token.Pos, doc *ast.CommentGroup, name, label string) {
	if doc == nil || strings.TrimSpace(doc.Text()) == "" {
		report(pos, "%s has no doc comment", label)
		return
	}
	text := strings.TrimSpace(doc.Text())
	if strings.HasPrefix(text, "Deprecated:") {
		return
	}
	first := text
	if i := strings.IndexAny(first, ".\n"); i >= 0 {
		first = first[:i+1]
	}
	if !strings.Contains(first, name) {
		report(pos, "%s doc comment does not mention %q in its first sentence", label, name)
	}
}
