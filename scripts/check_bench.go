// Command check_bench gates CI on audit-engine performance: it compares a
// freshly measured BENCH_audit.json against the committed baseline — and,
// when -prev points at the previous main run's artifact (restored from the
// actions cache), against that too — and fails when a throughput metric
// regressed by more than the tolerance (default 30%), or when any
// correctness invariant recorded in the JSON is violated (verdict
// mismatches, a streaming window overrun, a distributed dispatch that cost
// more than it should).
//
//	go run ./scripts/check_bench.go -baseline BENCH_audit.json -current bench.json
//	go run ./scripts/check_bench.go -baseline BENCH_audit.json -prev prev/bench.json -current bench.json
//
// Only rate metrics are compared — wall-clock times vary with runner
// hardware, but so do rates, hence the deliberately loose tolerance: the
// gate exists to catch step-change regressions (an accidentally serialized
// pipeline, a quadratic hot path), not single-digit noise. The previous-run
// comparison is tighter in spirit (same runner fleet, adjacent commits)
// but uses the same tolerance so a noisy runner cannot block a merge.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// bench mirrors the subset of experiments.AuditBenchResult the gate reads.
type bench struct {
	LogEntries            int     `json:"log_entries"`
	SerialEntriesPerSec   float64 `json:"serial_entries_per_sec"`
	SerialMInstrPerSec    float64 `json:"serial_minstr_per_sec"`
	ParallelMInstrPerSec  float64 `json:"parallel_minstr_per_sec"`
	PredecodeSpeedup      float64 `json:"predecode_speedup_vs_step"`
	PredecodeVerdictMatch bool    `json:"predecode_verdict_match"`
	FusionSpeedup         float64 `json:"fusion_speedup_vs_predecode"`
	FusionVerdictMatch    bool    `json:"fusion_verdict_match"`
	DispatchesPerInstr    float64 `json:"dispatches_per_instruction"`
	StreamEntriesPerSec   float64 `json:"stream_entries_per_sec"`
	StreamVerdictMatch    bool    `json:"stream_verdict_match"`
	StreamPeakResident    int     `json:"stream_peak_resident_entries"`
	StreamWindow          int     `json:"stream_window"`
	ArchiveBytes          int64   `json:"archive_bytes"`
	ArchiveColdEPS        float64 `json:"archive_cold_entries_per_sec"`
	ArchiveWarmEPS        float64 `json:"archive_warm_entries_per_sec"`
	ArchiveVerdictMatch   bool    `json:"archive_verdict_match"`
	DistWorkers           int     `json:"dist_workers"`
	DistWallNs            int64   `json:"dist_wall_ns"`
	DistOverheadRatio     float64 `json:"dist_overhead_ratio"`
	DistMergeWallNs       int64   `json:"dist_merge_wall_ns"`
	DistVerdictMatch      bool    `json:"dist_verdict_match"`
	CoordWorkers          int     `json:"coord_workers"`
	CoordEpochsDone       int64   `json:"coord_epochs_done"`
	CoordEpochsPerSec     float64 `json:"coord_epochs_per_sec"`
	CoordFleetUtilization float64 `json:"coord_fleet_utilization"`
	CoordRetries          int64   `json:"coord_retries"`
	CoordVerdictMatch     bool    `json:"coord_verdict_match"`
	ResumeKillAfter       int     `json:"coord_resume_kill_after_verdicts"`
	ResumeRunsResumed     int64   `json:"coord_resume_runs_resumed"`
	ResumeEpochsSkipped   int64   `json:"coord_resume_epochs_skipped"`
	ResumeVerdictMatch    bool    `json:"coord_resume_verdict_match"`
	JournalBytes          int64   `json:"coord_journal_bytes"`
	JournalOverheadRatio  float64 `json:"coord_journal_overhead_ratio"`
	DeltaJobBytesFull     int     `json:"dist_job_bytes_full_state"`
	DeltaJobBytes         int     `json:"dist_job_bytes_delta"`
	DeltaJobsShipped      int     `json:"delta_jobs_shipped"`
	DeltaDistWallNs       int64   `json:"delta_dist_wall_ns"`
	DeltaFoldVerifyWallNs int64   `json:"delta_fold_verify_wall_ns"`
	DeltaVerdictMatch     bool    `json:"delta_verdict_match"`
	MerkleSerialGBps      float64 `json:"merkle_serial_gb_per_sec"`
	MerkleParallelGBps    float64 `json:"merkle_parallel_gb_per_sec"`
	MerkleFullVerifies    float64 `json:"merkle_full_verifies_per_sec"`
	MerkleIncVerifies     float64 `json:"merkle_inc_verifies_per_sec"`
	MerkleIncSpeedup      float64 `json:"merkle_inc_speedup_vs_full"`
	VerifyOpsPerSec       float64 `json:"rsa_verify_ops_per_sec"`
	Workers               []struct {
		Workers      int  `json:"workers"`
		VerdictMatch bool `json:"verdict_match"`
	} `json:"workers_ablation"`
}

func load(path string) (*bench, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b bench
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_audit.json", "committed baseline JSON")
	prevPath := flag.String("prev", "", "previous run's JSON artifact (optional; skipped when missing)")
	currentPath := flag.String("current", "bench.json", "freshly measured JSON")
	tolerance := flag.Float64("tolerance", 0.30, "max allowed fractional regression on rate metrics")
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "check_bench:", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "check_bench:", err)
		os.Exit(2)
	}
	var prev *bench
	if *prevPath != "" {
		if _, statErr := os.Stat(*prevPath); statErr == nil {
			prev, err = load(*prevPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "check_bench:", err)
				os.Exit(2)
			}
		} else {
			fmt.Printf("check_bench: no previous-run artifact at %s (first run on this branch?); baseline only\n", *prevPath)
		}
	}

	failures := 0
	rates := func(label string, base *bench) {
		rate := func(name string, baseVal, cur float64) {
			if baseVal <= 0 {
				fmt.Printf("  %-28s %s empty; skipped\n", name, label)
				return
			}
			floor := baseVal * (1 - *tolerance)
			status := "ok"
			if cur < floor {
				status = "REGRESSED"
				failures++
			}
			fmt.Printf("  %-28s %12.1f vs %s %12.1f (floor %12.1f) %s\n", name, cur, label, baseVal, floor, status)
		}
		rate("serial entries/s", base.SerialEntriesPerSec, current.SerialEntriesPerSec)
		rate("serial Minstr/s", base.SerialMInstrPerSec, current.SerialMInstrPerSec)
		rate("parallel Minstr/s", base.ParallelMInstrPerSec, current.ParallelMInstrPerSec)
		rate("stream entries/s", base.StreamEntriesPerSec, current.StreamEntriesPerSec)
		rate("archive cold entries/s", base.ArchiveColdEPS, current.ArchiveColdEPS)
		rate("archive warm entries/s", base.ArchiveWarmEPS, current.ArchiveWarmEPS)
		rate("coord epochs/s", base.CoordEpochsPerSec, current.CoordEpochsPerSec)
		rate("merkle serial GB/s", base.MerkleSerialGBps, current.MerkleSerialGBps)
		rate("merkle parallel GB/s", base.MerkleParallelGBps, current.MerkleParallelGBps)
		rate("merkle full verifies/s", base.MerkleFullVerifies, current.MerkleFullVerifies)
		rate("merkle inc verifies/s", base.MerkleIncVerifies, current.MerkleIncVerifies)
		rate("rsa verify ops/s", base.VerifyOpsPerSec, current.VerifyOpsPerSec)
	}

	fmt.Printf("check_bench: tolerance %.0f%%, %d entries audited\n", *tolerance*100, current.LogEntries)
	fmt.Println("vs committed baseline:")
	rates("baseline", baseline)
	if prev != nil {
		fmt.Println("vs previous run:")
		rates("previous", prev)
	}

	invariant := func(name string, ok bool) {
		status := "ok"
		if !ok {
			status = "VIOLATED"
			failures++
		}
		fmt.Printf("  %-28s %s\n", name, status)
	}

	fmt.Println("invariants:")
	invariant("stream verdict match", current.StreamVerdictMatch)
	invariant("predecode verdict match", current.PredecodeVerdictMatch)
	// The predecoded sprint must stay decisively faster than Step-by-Step
	// replay; losing this means the interpreter fell off its fast path (a
	// feature branch crept back into the hot loop, or the cache stopped
	// hitting).
	invariant("predecode speedup >= 2", current.PredecodeSpeedup <= 0 ||
		current.PredecodeSpeedup >= 2)
	// Superinstruction fusion must keep paying for its decode-time pass:
	// the fused sprint has to beat the unfused predecoded loop by a clear
	// margin, with verdicts byte-identical, and most retired instructions
	// should still be reaching pipelined dispatches (a ratio drifting back
	// toward 1.0 means the fuser stopped matching the compiler's idioms).
	invariant("fusion verdict match", current.FusionVerdictMatch)
	invariant("fusion speedup >= 1.5", current.FusionSpeedup <= 0 ||
		current.FusionSpeedup >= 1.5)
	invariant("dispatches/instr < 0.9", current.DispatchesPerInstr <= 0 ||
		current.DispatchesPerInstr < 0.9)
	// The incremental fold must stay decisively cheaper than a full rehash;
	// losing this means per-snapshot verification went back to O(state).
	invariant("inc verify beats full rehash", current.MerkleIncVerifies <= 0 ||
		current.MerkleIncSpeedup > 2)
	invariant("stream window respected", current.StreamWindow <= 0 ||
		current.StreamPeakResident <= current.StreamWindow)
	// Archive-backed audit: the verdict must not depend on whether the log
	// streamed from a disk archive or an in-memory container, the archive
	// must actually hold the segments (zero bytes means the recording was
	// never written), and disk-backed throughput must stay within a small
	// factor of the in-memory stream — an order-of-magnitude collapse means
	// segment reads stopped batching or every epoch re-hashed the world.
	// Conditional on the archive fields being present so older artifacts
	// don't fail the gate.
	if current.ArchiveColdEPS > 0 {
		invariant("archive verdict match", current.ArchiveVerdictMatch)
		invariant("archive bytes recorded", current.ArchiveBytes > 0)
		invariant("archive cold within 5x of stream", current.StreamEntriesPerSec <= 0 ||
			current.ArchiveColdEPS*5 >= current.StreamEntriesPerSec)
		invariant("archive warm not slower than 2x cold", current.ArchiveWarmEPS*2 >= current.ArchiveColdEPS)
	}
	// Distributed dispatch: the verdict must not depend on where epochs
	// replayed, shipping epochs over loopback must stay within a small
	// multiple of the in-process pool at the same fan-out (a blowup means
	// the codec or the coordinator serialized the pipeline), and the
	// deterministic merge must stay a rounding error, not a stage.
	if current.DistWorkers > 0 {
		invariant("dist verdict match", current.DistVerdictMatch)
		invariant("dist overhead ratio <= 5", current.DistOverheadRatio <= 0 ||
			current.DistOverheadRatio <= 5)
		invariant("dist merge wall <= 100ms", current.DistMergeWallNs <= 100_000_000)
	}
	// Coordinator service: verdicts must not depend on the elastic queue,
	// an honest loopback fleet must stay busy (a utilization collapse means
	// dispatch serialized behind the scheduler lock or the session cache
	// stopped hitting), and retries against honest workers must stay
	// bounded by the work itself.
	if current.CoordWorkers > 0 {
		invariant("coord verdict match", current.CoordVerdictMatch)
		invariant("coord utilization >= 0.6", current.CoordFleetUtilization <= 0 ||
			current.CoordFleetUtilization >= 0.6)
		invariant("coord retries <= epochs", current.CoordRetries <= current.CoordEpochsDone)
	}
	// Journaled crash-resume: a coordinator killed mid-audit and restarted
	// over its journal must keep the verdict byte-identical, emit at least
	// the durable-at-kill epochs straight from the journal (zero skips
	// means resume stopped engaging and everything re-replayed), and the
	// fsync-batched WAL must stay cheap on an uninterrupted run — an
	// overhead ratio past 2 means journaling started syncing per epoch or
	// blocking dispatch. Conditional on the journal fields being present so
	// older artifacts don't fail the gate.
	if current.ResumeKillAfter > 0 {
		invariant("resume verdict match", current.ResumeVerdictMatch)
		invariant("resume runs resumed >= 1", current.ResumeRunsResumed >= 1)
		invariant("resume epochs from journal", current.ResumeEpochsSkipped >= int64(current.ResumeKillAfter))
		invariant("journal bytes recorded", current.JournalBytes > 0)
		invariant("journal overhead <= 2x", current.JournalOverheadRatio <= 0 ||
			current.JournalOverheadRatio <= 2.0)
	}
	// Delta-shipped dispatch: the verdict must not depend on whether jobs
	// carried full states or proof-carrying increments, the increments must
	// actually pay for themselves (at least 4x fewer bytes on the wire than
	// full-state shipping — losing this means deltas stopped engaging or
	// started shipping whole states), and reconstructing start states from
	// fold proofs must stay a fraction of the dispatch itself.
	if current.DeltaJobBytes > 0 {
		invariant("delta verdict match", current.DeltaVerdictMatch)
		invariant("delta jobs shipped > 0", current.DeltaJobsShipped > 0)
		invariant("delta bytes 4x under full", current.DeltaJobBytesFull >= 4*current.DeltaJobBytes)
		invariant("delta fold-verify under dist wall", current.DeltaFoldVerifyWallNs > 0 &&
			current.DeltaFoldVerifyWallNs <= current.DeltaDistWallNs)
	}
	for _, w := range current.Workers {
		invariant(fmt.Sprintf("parallel verdict (%d workers)", w.Workers), w.VerdictMatch)
	}

	if failures > 0 {
		fmt.Printf("check_bench: %d failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("check_bench: all metrics within tolerance")
}
