// Command check_bench gates CI on audit-engine performance: it compares a
// freshly measured BENCH_audit.json against the committed baseline and
// fails when a throughput metric regressed by more than the tolerance
// (default 30%), or when any correctness invariant recorded in the JSON is
// violated (verdict mismatches, a streaming window overrun).
//
//	go run ./scripts/check_bench.go -baseline BENCH_audit.json -current bench.json
//
// Only rate metrics are compared — wall-clock times vary with runner
// hardware, but so do rates, hence the deliberately loose tolerance: the
// gate exists to catch step-change regressions (an accidentally serialized
// pipeline, a quadratic hot path), not single-digit noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// bench mirrors the subset of experiments.AuditBenchResult the gate reads.
type bench struct {
	LogEntries            int     `json:"log_entries"`
	SerialEntriesPerSec   float64 `json:"serial_entries_per_sec"`
	SerialMInstrPerSec    float64 `json:"serial_minstr_per_sec"`
	ParallelMInstrPerSec  float64 `json:"parallel_minstr_per_sec"`
	PredecodeSpeedup      float64 `json:"predecode_speedup_vs_step"`
	PredecodeVerdictMatch bool    `json:"predecode_verdict_match"`
	StreamEntriesPerSec   float64 `json:"stream_entries_per_sec"`
	StreamVerdictMatch    bool    `json:"stream_verdict_match"`
	StreamPeakResident    int     `json:"stream_peak_resident_entries"`
	StreamWindow          int     `json:"stream_window"`
	MerkleSerialGBps      float64 `json:"merkle_serial_gb_per_sec"`
	MerkleParallelGBps    float64 `json:"merkle_parallel_gb_per_sec"`
	MerkleFullVerifies    float64 `json:"merkle_full_verifies_per_sec"`
	MerkleIncVerifies     float64 `json:"merkle_inc_verifies_per_sec"`
	MerkleIncSpeedup      float64 `json:"merkle_inc_speedup_vs_full"`
	VerifyOpsPerSec       float64 `json:"rsa_verify_ops_per_sec"`
	Workers               []struct {
		Workers      int  `json:"workers"`
		VerdictMatch bool `json:"verdict_match"`
	} `json:"workers_ablation"`
}

func load(path string) (*bench, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b bench
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_audit.json", "committed baseline JSON")
	currentPath := flag.String("current", "bench.json", "freshly measured JSON")
	tolerance := flag.Float64("tolerance", 0.30, "max allowed fractional regression on rate metrics")
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "check_bench:", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "check_bench:", err)
		os.Exit(2)
	}

	failures := 0
	rate := func(name string, base, cur float64) {
		if base <= 0 {
			fmt.Printf("  %-28s baseline empty; skipped\n", name)
			return
		}
		floor := base * (1 - *tolerance)
		status := "ok"
		if cur < floor {
			status = "REGRESSED"
			failures++
		}
		fmt.Printf("  %-28s %12.1f vs baseline %12.1f (floor %12.1f) %s\n", name, cur, base, floor, status)
	}
	invariant := func(name string, ok bool) {
		status := "ok"
		if !ok {
			status = "VIOLATED"
			failures++
		}
		fmt.Printf("  %-28s %s\n", name, status)
	}

	fmt.Printf("check_bench: tolerance %.0f%%, %d entries audited\n", *tolerance*100, current.LogEntries)
	rate("serial entries/s", baseline.SerialEntriesPerSec, current.SerialEntriesPerSec)
	rate("serial Minstr/s", baseline.SerialMInstrPerSec, current.SerialMInstrPerSec)
	rate("parallel Minstr/s", baseline.ParallelMInstrPerSec, current.ParallelMInstrPerSec)
	rate("stream entries/s", baseline.StreamEntriesPerSec, current.StreamEntriesPerSec)
	rate("merkle serial GB/s", baseline.MerkleSerialGBps, current.MerkleSerialGBps)
	rate("merkle parallel GB/s", baseline.MerkleParallelGBps, current.MerkleParallelGBps)
	rate("merkle full verifies/s", baseline.MerkleFullVerifies, current.MerkleFullVerifies)
	rate("merkle inc verifies/s", baseline.MerkleIncVerifies, current.MerkleIncVerifies)
	rate("rsa verify ops/s", baseline.VerifyOpsPerSec, current.VerifyOpsPerSec)

	invariant("stream verdict match", current.StreamVerdictMatch)
	invariant("predecode verdict match", current.PredecodeVerdictMatch)
	// The predecoded sprint must stay decisively faster than Step-by-Step
	// replay; losing this means the interpreter fell off its fast path (a
	// feature branch crept back into the hot loop, or the cache stopped
	// hitting).
	invariant("predecode speedup >= 2", current.PredecodeSpeedup <= 0 ||
		current.PredecodeSpeedup >= 2)
	// The incremental fold must stay decisively cheaper than a full rehash;
	// losing this means per-snapshot verification went back to O(state).
	invariant("inc verify beats full rehash", current.MerkleIncVerifies <= 0 ||
		current.MerkleIncSpeedup > 2)
	invariant("stream window respected", current.StreamWindow <= 0 ||
		current.StreamPeakResident <= current.StreamWindow)
	for _, w := range current.Workers {
		invariant(fmt.Sprintf("parallel verdict (%d workers)", w.Workers), w.VerdictMatch)
	}

	if failures > 0 {
		fmt.Printf("check_bench: %d failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("check_bench: all metrics within tolerance")
}
