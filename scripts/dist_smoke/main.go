// Command dist_smoke is the CI gate for the distributed audit fan-out: it
// starts real `avm-audit -serve` worker processes on loopback, dispatches
// the full 26-cheat catalog (plus a clean match) through the TCP backend,
// and fails unless every distributed Result is byte-identical to the
// serial engine's. It then exercises the avm-run → avm-audit -dispatch
// offline workflow end to end and asserts the documented exit codes
// (0 clean, 1 fault detected, 2 audit/transport failure).
//
// The chaos phase re-runs the catalog through the long-running
// coordinator service while the fleet churns: one worker process is
// SIGKILLed a third of the way through and a replacement hot-joins two
// thirds through, and every verdict must still match the serial engine's.
// Finally it asserts the -coordinate exit-code contract, that a
// SIGKILLed journaled coordinator restarted over the same -journal (with
// a -register self-joined worker) resumes to byte-identical verdicts,
// that a second signal cuts a stalled worker drain short (still exit 0),
// and that a SIGTERMed worker drains gracefully (exit 0).
//
//	go build -o bin/ ./cmd/avm-audit ./cmd/avm-run
//	go run ./scripts/dist_smoke -audit-bin bin/avm-audit -run-bin bin/avm-run
//
// Exit status: 0 on full equivalence, 1 on any divergence or harness
// failure.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/game"
	"repro/internal/sig"
	"repro/internal/wire"
)

const matchNs = 6_000_000_000

var failures int

func failf(format string, args ...interface{}) {
	failures++
	fmt.Fprintf(os.Stderr, "dist_smoke: FAIL: "+format+"\n", args...)
}

// workerProc is one real `avm-audit -serve` process under test control.
type workerProc struct {
	addr string
	cmd  *exec.Cmd
}

// kill SIGKILLs the worker — the crash case; the coordinator only finds
// out when the connection drops or heartbeats stop.
func (w *workerProc) kill() {
	_ = w.cmd.Process.Kill()
	_, _ = w.cmd.Process.Wait()
}

// startWorker spawns one `avm-audit -serve` process and returns it with
// the address it bound (parsed from its banner line).
func startWorker(auditBin string) (*workerProc, error) {
	cmd := exec.Command(auditBin, "-serve", "-listen", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	w := &workerProc{cmd: cmd}
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if i := strings.LastIndex(line, "listening on "); i >= 0 {
				addrCh <- strings.TrimSpace(line[i+len("listening on "):])
				break
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			w.kill()
			return nil, fmt.Errorf("worker printed no listen address")
		}
		w.addr = addr
		return w, nil
	case <-time.After(10 * time.Second):
		w.kill()
		return nil, fmt.Errorf("worker did not announce its address in time")
	}
}

// auditMatch records one two-player match (cheat may be nil) and compares
// the serial audit of both players against the dispatched audit through
// the given backend. The spot-recheck seed is filled in from the scenario.
func auditMatch(name string, cheat *game.Cheat, opts audit.DistOptions) {
	cfg := game.ScenarioConfig{
		Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
		Seed: 2024, SnapshotEveryNs: matchNs / 3, FakeSignatures: true,
	}
	if cheat != nil {
		cfg.CheatPlayer = 1
		cfg.Cheat = cheat
	}
	s, err := game.NewScenario(cfg)
	if err != nil {
		failf("%s: building scenario: %v", name, err)
		return
	}
	s.Run(matchNs)
	for _, node := range []string{"player1", "player2"} {
		serial, err := s.AuditNode(sig.NodeID(node))
		if err != nil {
			failf("%s/%s: serial audit: %v", name, node, err)
			continue
		}
		opts.SpotRecheckSeed = cfg.Seed
		dist, dstats, err := s.AuditNodeDist(sig.NodeID(node), opts)
		if err != nil {
			failf("%s/%s: dispatched audit: %v", name, node, err)
			continue
		}
		if !reflect.DeepEqual(serial, dist) {
			failf("%s/%s: verdict divergence:\n  serial: %+v\n  dist:   %+v", name, node, serial, dist)
			continue
		}
		if dstats.SpotMismatches != 0 {
			failf("%s/%s: honest workers produced %d spot mismatches", name, node, dstats.SpotMismatches)
		}
		cheater := cheat != nil && node == "player1"
		if serial.Passed == cheater {
			// Not a divergence, but the smoke would be vacuous: a cheater
			// that passes (or an honest player that faults) means the
			// scenario no longer exercises what it claims to.
			failf("%s/%s: serial passed=%v but cheater=%v", name, node, serial.Passed, cheater)
		}
	}
}

// watchedProc is a process whose stdout lines the harness needs both live
// (banners announcing bound ports) and in full (verdict comparison after
// exit). Stderr passes through.
type watchedProc struct {
	cmd   *exec.Cmd
	mu    sync.Mutex
	cond  *sync.Cond
	lines []string
	eof   bool
}

func startWatched(bin string, args ...string) (*watchedProc, error) {
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &watchedProc{cmd: cmd}
	p.cond = sync.NewCond(&p.mu)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			p.mu.Lock()
			p.lines = append(p.lines, sc.Text())
			p.cond.Broadcast()
			p.mu.Unlock()
		}
		p.mu.Lock()
		p.eof = true
		p.cond.Broadcast()
		p.mu.Unlock()
	}()
	return p, nil
}

// waitLine blocks until the process prints a line containing substr (or
// its stdout closes / the timeout passes) and returns it.
func (p *watchedProc) waitLine(substr string, timeout time.Duration) (string, bool) {
	deadline := time.Now().Add(timeout)
	wake := time.AfterFunc(timeout, func() { p.cond.Broadcast() })
	defer wake.Stop()
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; ; {
		for ; i < len(p.lines); i++ {
			if strings.Contains(p.lines[i], substr) {
				return p.lines[i], true
			}
		}
		if p.eof || time.Now().After(deadline) {
			return "", false
		}
		p.cond.Wait()
	}
}

func (p *watchedProc) allLines() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.lines...)
}

func (p *watchedProc) kill() {
	_ = p.cmd.Process.Kill()
	_, _ = p.cmd.Process.Wait()
}

// startEpochZeroSilentProxy fronts a real worker process with the chaos
// harness's verdict-filter proxy, swallowing every verdict for epoch
// index 0. Epoch 0 precedes any possible fault, so its verdict is always
// needed: any run dispatched through the proxy strands mid-flight with
// the later epochs' verdicts durable — the deterministic setup for
// SIGKILLing a coordinator that provably has unfinished journaled work.
func startEpochZeroSilentProxy(workerAddr string) (string, error) {
	_, addr, err := audit.StartVerdictFilterProxy(workerAddr, func(v *wire.AuditVerdict) bool {
		return v.Index != 0
	})
	return addr, err
}

// Timing-independent cores of the avm-audit verdict lines, so serial and
// resumed-coordinator output can be compared byte for byte.
var (
	passedRe = regexp.MustCompile(`^(\S+)\s+PASSED\s+in\s+\S+\s+\((\d+ entries, \d+ instructions replayed, \d+ sends matched)`)
	faultRe  = regexp.MustCompile(`^(\S+)\s+FAULT\s+in\s+\S+\s+— (.+? \([^,]+ check, entry \d+)`)
)

func verdictSummaries(lines []string) []string {
	var out []string
	for _, ln := range lines {
		if m := passedRe.FindStringSubmatch(ln); m != nil {
			out = append(out, m[1]+" PASSED "+m[2])
		} else if m := faultRe.FindStringSubmatch(ln); m != nil {
			out = append(out, m[1]+" FAULT "+m[2])
		}
	}
	sort.Strings(out)
	return out
}

// runCapture runs a command, returning its stdout lines and exit code.
func runCapture(bin string, args ...string) ([]string, int) {
	cmd := exec.Command(bin, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		code = -1
	}
	return strings.Split(strings.TrimRight(buf.String(), "\n"), "\n"), code
}

// expectExit runs a command and checks its exit code.
func expectExit(want int, bin string, args ...string) {
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	err := cmd.Run()
	got := 0
	if ee, ok := err.(*exec.ExitError); ok {
		got = ee.ExitCode()
	} else if err != nil {
		failf("%s %s: %v", bin, strings.Join(args, " "), err)
		return
	}
	if got != want {
		failf("%s %s: exit %d, want %d", bin, strings.Join(args, " "), got, want)
	}
}

func main() {
	auditBin := flag.String("audit-bin", "bin/avm-audit", "path to the avm-audit binary")
	runBin := flag.String("run-bin", "bin/avm-run", "path to the avm-run binary")
	workers := flag.Int("workers", 3, "loopback worker processes to start")
	cheats := flag.String("cheats", "all", `comma-separated catalog cheats to dispatch, or "all"`)
	flag.Parse()

	mustWorker := func() *workerProc {
		w, err := startWorker(*auditBin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dist_smoke: starting worker: %v\n", err)
			os.Exit(1)
		}
		return w
	}
	var addrs []string
	for i := 0; i < *workers; i++ {
		w := mustWorker()
		defer w.kill()
		addrs = append(addrs, w.addr)
	}
	fmt.Printf("dist_smoke: %d workers on %s\n", *workers, strings.Join(addrs, ", "))

	// Phase 1: the cheat catalog, serial vs TCP-dispatched, byte-identical.
	catalog := game.Catalog()
	if *cheats != "all" {
		catalog = catalog[:0]
		for _, nm := range strings.Split(*cheats, ",") {
			c, err := game.CatalogByName(strings.TrimSpace(nm))
			if err != nil {
				fmt.Fprintln(os.Stderr, "dist_smoke:", err)
				os.Exit(1)
			}
			catalog = append(catalog, c)
		}
	}
	tcpOpts := audit.DistOptions{
		Backend:       &audit.TCPBackend{Addrs: addrs, JobTimeout: 60 * time.Second},
		EngineOptions: audit.EngineOptions{SpotRecheckFraction: 0.25},
	}
	start := time.Now()
	auditMatch("clean", nil, tcpOpts)
	for _, c := range catalog {
		before := failures
		auditMatch(c.Name, c, tcpOpts)
		status := "ok"
		if failures > before {
			status = "DIVERGED"
		}
		fmt.Printf("dist_smoke: %-24s %s\n", c.Name, status)
	}
	fmt.Printf("dist_smoke: catalog phase done in %v (%d matches)\n",
		time.Since(start).Round(time.Millisecond), len(catalog)+1)

	// Chaos phase: the same catalog through the long-running coordinator
	// while the fleet churns. Local fallback is off, so every verdict comes
	// from a real worker process; one worker is SIGKILLed a third of the
	// way through (its in-flight epochs must be re-dispatched after the
	// connection drops) and a replacement hot-joins two thirds through.
	var fleet []*workerProc
	for i := 0; i < 3; i++ {
		w := mustWorker()
		defer w.kill()
		fleet = append(fleet, w)
	}
	coord := audit.NewCoordinator(audit.CoordinatorConfig{
		Pipeline: 2, JobTimeout: 60 * time.Second, DisableLocalFallback: true,
	})
	for _, w := range fleet {
		coord.AddWorker(w.addr)
	}
	coordOpts := audit.DistOptions{Backend: coord.Backend(), EngineOptions: audit.EngineOptions{SpotRecheckFraction: 0.25}}
	killAt, joinAt := len(catalog)/3, 2*len(catalog)/3
	start = time.Now()
	auditMatch("chaos/clean", nil, coordOpts)
	for i, c := range catalog {
		if i == killAt {
			fmt.Printf("dist_smoke: SIGKILL worker %s mid-catalog\n", fleet[0].addr)
			fleet[0].kill()
		}
		if i == joinAt {
			repl := mustWorker()
			defer repl.kill()
			coord.RemoveWorker(fleet[0].addr)
			coord.AddWorker(repl.addr)
			fmt.Printf("dist_smoke: hot-joined replacement worker %s\n", repl.addr)
		}
		before := failures
		auditMatch("chaos/"+c.Name, c, coordOpts)
		status := "ok"
		if failures > before {
			status = "DIVERGED"
		}
		fmt.Printf("dist_smoke: chaos %-24s %s\n", c.Name, status)
	}
	fs := coord.Stats()
	coord.Close()
	fmt.Printf("dist_smoke: chaos phase done in %v (%d matches; %d epochs, %d retries, %d heartbeat timeouts, %d redials)\n",
		time.Since(start).Round(time.Millisecond), len(catalog)+1,
		fs.EpochsDone, fs.Retries, fs.HeartbeatTimeouts, fs.Redials)
	if fs.LocalFallbackEpochs != 0 {
		failf("chaos phase replayed %d epochs locally with fallback disabled", fs.LocalFallbackEpochs)
	}

	// Phase 2: the offline workflow through the real binaries, asserting
	// the documented exit codes.
	tmp, err := os.MkdirTemp("", "dist-smoke-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dist_smoke:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(tmp)
	cleanDir := filepath.Join(tmp, "clean")
	cheatDir := filepath.Join(tmp, "cheat")
	expectExit(0, *runBin, "-scenario", "game", "-seconds", "6", "-seed", "3", "-out", cleanDir)
	expectExit(0, *runBin, "-scenario", "game", "-seconds", "6", "-seed", "3", "-cheat", "aimbot", "-out", cheatDir)
	dispatchArg := strings.Join(addrs, ",")
	expectExit(0, *auditBin, "-dir", cleanDir, "-dispatch", dispatchArg)                         // clean ⇒ 0
	expectExit(1, *auditBin, "-dir", cheatDir, "-dispatch", dispatchArg, "-spot", "1")           // fault ⇒ 1
	expectExit(1, *auditBin, "-dir", cheatDir)                                                   // serial agrees ⇒ 1
	expectExit(2, *auditBin, "-dir", cleanDir, "-dispatch", "127.0.0.1:1", "-job-timeout", "2s") // dead worker ⇒ 2
	expectExit(2, *auditBin, "-dir", filepath.Join(tmp, "missing"))                              // bad recording ⇒ 2

	// The -coordinate mode honors the same contract: a dead fleet only
	// fails the audit when local fallback is off.
	expectExit(0, *auditBin, "-dir", cleanDir, "-coordinate", dispatchArg)               // clean ⇒ 0
	expectExit(1, *auditBin, "-dir", cheatDir, "-coordinate", dispatchArg, "-spot", "1") // fault ⇒ 1
	expectExit(0, *auditBin, "-dir", cleanDir, "-coordinate", "127.0.0.1:1",
		"-job-timeout", "2s") // dead fleet, local fallback ⇒ 0
	expectExit(2, *auditBin, "-dir", cleanDir, "-coordinate", "127.0.0.1:1",
		"-local-fallback=false", "-job-timeout", "2s") // dead fleet, no fallback ⇒ 2

	// Crash-resume phase: SIGKILL a real `-coordinate -journal` process
	// once its journal holds durable verdicts, restart it over the same
	// journal with a worker that joins via -register, and require the
	// resumed verdicts identical to the serial engine's (timing aside),
	// the journal counters reported, exit code 1 (the recording cheats),
	// and an empty journal once the resumed audit settles.
	fmt.Println("dist_smoke: crash-resume phase")
	serialLines, serialCode := runCapture(*auditBin, "-dir", cheatDir)
	if serialCode != 1 {
		failf("serial audit of the cheat recording: exit %d, want 1", serialCode)
	}
	crashWorker := mustWorker()
	defer crashWorker.kill()
	proxyAddr, err := startEpochZeroSilentProxy(crashWorker.addr)
	if err != nil {
		failf("starting epoch-0-silent proxy: %v", err)
	}
	journalDir := filepath.Join(tmp, "journal")
	victim, err := startWatched(*auditBin, "-dir", cheatDir, "-coordinate", proxyAddr,
		"-journal", journalDir, "-local-fallback=false", "-job-timeout", "120s")
	if err != nil {
		failf("starting journaled coordinator: %v", err)
	} else {
		deadline := time.Now().Add(60 * time.Second)
		for {
			_, verdicts, err := audit.InspectJournal(journalDir)
			if err == nil && verdicts >= 1 {
				break
			}
			if time.Now().After(deadline) {
				failf("coordinator journal never gained a durable verdict")
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		fmt.Println("dist_smoke: SIGKILL coordinator mid-audit (journal has durable verdicts)")
		victim.kill()

		restart, err := startWatched(*auditBin, "-dir", cheatDir, "-journal", journalDir,
			"-register-listen", "127.0.0.1:0", "-local-fallback=false", "-job-timeout", "120s")
		if err != nil {
			failf("restarting journaled coordinator: %v", err)
		} else {
			banner, ok := restart.waitLine("registration listener on ", 20*time.Second)
			if !ok {
				failf("restarted coordinator printed no registration banner")
				restart.kill()
			} else {
				regAddr := strings.TrimSpace(banner[strings.LastIndex(banner, " on ")+len(" on "):])
				joiner, err := startWatched(*auditBin, "-serve", "-listen", "127.0.0.1:0", "-register", regAddr)
				if err != nil {
					failf("starting register-joined worker: %v", err)
				} else {
					defer joiner.kill()
					if _, ok := joiner.waitLine("registered with coordinator", 20*time.Second); !ok {
						failf("worker never confirmed registration with %s", regAddr)
					}
				}
				werr := restart.cmd.Wait()
				code := 0
				if ee, ok := werr.(*exec.ExitError); ok {
					code = ee.ExitCode()
				} else if werr != nil {
					failf("waiting for restarted coordinator: %v", werr)
				}
				if code != 1 {
					failf("restarted coordinator over cheat recording: exit %d, want 1", code)
				}
				lines := restart.allLines()
				if got, want := verdictSummaries(lines), verdictSummaries(serialLines); !reflect.DeepEqual(got, want) {
					failf("crash-resume verdict divergence:\n  resumed: %v\n  serial:  %v", got, want)
				}
				var resumed, skipped, jbytes int
				journalLine := false
				for _, ln := range lines {
					if n, _ := fmt.Sscanf(ln, "journal: %d runs resumed, %d epochs skipped as durable, %d bytes",
						&resumed, &skipped, &jbytes); n == 3 {
						journalLine = true
					}
				}
				switch {
				case !journalLine:
					failf("restarted coordinator printed no journal status line")
				case resumed == 0 || skipped == 0 || jbytes == 0:
					failf("journal line reports no resume work: %d resumed, %d skipped, %d bytes", resumed, skipped, jbytes)
				default:
					fmt.Printf("dist_smoke: crash-resume ok (%d runs resumed, %d epochs skipped as durable)\n", resumed, skipped)
				}
				if runs, verdicts, err := audit.InspectJournal(journalDir); err != nil || runs != 0 || verdicts != 0 {
					failf("journal after clean resume = (%d runs, %d verdicts, %v), want empty", runs, verdicts, err)
				}
			}
		}
	}

	// A second signal during a stalled drain must exit immediately, still
	// 0. A -chaos-hang worker never finishes its in-flight epoch, so only
	// the second-signal path can end the process.
	hangW, err := startWatched(*auditBin, "-serve", "-listen", "127.0.0.1:0", "-chaos-hang", "-drain-timeout", "300s")
	if err != nil {
		failf("starting hang worker: %v", err)
	} else {
		banner, ok := hangW.waitLine("listening on ", 10*time.Second)
		if !ok {
			failf("hang worker printed no listen address")
			hangW.kill()
		} else {
			hangAddr := strings.TrimSpace(banner[strings.LastIndex(banner, " on ")+len(" on "):])
			// Feed it a job it will hang on, then give the dispatch time to land.
			feeder := exec.Command(*auditBin, "-dir", cleanDir, "-dispatch", hangAddr, "-job-timeout", "300s")
			feeder.Stdout, feeder.Stderr = io.Discard, io.Discard
			if err := feeder.Start(); err != nil {
				failf("starting feeder dispatch: %v", err)
			}
			defer func() { _ = feeder.Process.Kill(); _, _ = feeder.Process.Wait() }()
			time.Sleep(5 * time.Second)
			if err := hangW.cmd.Process.Signal(syscall.SIGTERM); err != nil {
				failf("first SIGTERM to hang worker: %v", err)
			}
			if _, ok := hangW.waitLine("draining", 10*time.Second); !ok {
				failf("hang worker printed no draining banner after SIGTERM")
			}
			// The drain must stall on the hung epoch: the process has to
			// still be alive well after the banner.
			time.Sleep(3 * time.Second)
			if err := hangW.cmd.Process.Signal(syscall.Signal(0)); err != nil {
				failf("hang worker exited during drain despite a hung in-flight epoch: %v", err)
			} else {
				start := time.Now()
				if err := hangW.cmd.Process.Signal(syscall.SIGTERM); err != nil {
					failf("second SIGTERM to hang worker: %v", err)
				}
				if werr := hangW.cmd.Wait(); werr != nil {
					failf("double-signaled worker should exit 0 immediately, got: %v", werr)
				} else if wait := time.Since(start); wait > 10*time.Second {
					failf("double-signaled worker took %v to exit, want immediate", wait)
				} else {
					fmt.Printf("dist_smoke: second signal cut the drain short in %v (exit 0)\n", wait.Round(time.Millisecond))
				}
			}
		}
	}

	// A SIGTERMed worker must drain gracefully: finish in-flight epochs,
	// refuse new jobs, exit 0.
	drainer := mustWorker()
	if err := drainer.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		failf("signaling drain worker: %v", err)
	} else if werr := drainer.cmd.Wait(); werr != nil {
		failf("SIGTERMed worker should drain and exit 0, got: %v", werr)
	} else {
		fmt.Println("dist_smoke: SIGTERMed worker drained cleanly (exit 0)")
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "dist_smoke: %d failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("dist_smoke: all verdicts byte-identical; exit codes stable")
}
