// Command dist_smoke is the CI gate for the distributed audit fan-out: it
// starts real `avm-audit -serve` worker processes on loopback, dispatches
// the full 26-cheat catalog (plus a clean match) through the TCP backend,
// and fails unless every distributed Result is byte-identical to the
// serial engine's. It then exercises the avm-run → avm-audit -dispatch
// offline workflow end to end and asserts the documented exit codes
// (0 clean, 1 fault detected, 2 audit/transport failure).
//
// The chaos phase re-runs the catalog through the long-running
// coordinator service while the fleet churns: one worker process is
// SIGKILLed a third of the way through and a replacement hot-joins two
// thirds through, and every verdict must still match the serial engine's.
// Finally it asserts the -coordinate exit-code contract and that a
// SIGTERMed worker drains gracefully (exit 0).
//
//	go build -o bin/ ./cmd/avm-audit ./cmd/avm-run
//	go run ./scripts/dist_smoke -audit-bin bin/avm-audit -run-bin bin/avm-run
//
// Exit status: 0 on full equivalence, 1 on any divergence or harness
// failure.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"time"

	"repro/internal/audit"
	"repro/internal/avmm"
	"repro/internal/game"
	"repro/internal/sig"
)

const matchNs = 6_000_000_000

var failures int

func failf(format string, args ...interface{}) {
	failures++
	fmt.Fprintf(os.Stderr, "dist_smoke: FAIL: "+format+"\n", args...)
}

// workerProc is one real `avm-audit -serve` process under test control.
type workerProc struct {
	addr string
	cmd  *exec.Cmd
}

// kill SIGKILLs the worker — the crash case; the coordinator only finds
// out when the connection drops or heartbeats stop.
func (w *workerProc) kill() {
	_ = w.cmd.Process.Kill()
	_, _ = w.cmd.Process.Wait()
}

// startWorker spawns one `avm-audit -serve` process and returns it with
// the address it bound (parsed from its banner line).
func startWorker(auditBin string) (*workerProc, error) {
	cmd := exec.Command(auditBin, "-serve", "-listen", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	w := &workerProc{cmd: cmd}
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if i := strings.LastIndex(line, "listening on "); i >= 0 {
				addrCh <- strings.TrimSpace(line[i+len("listening on "):])
				break
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			w.kill()
			return nil, fmt.Errorf("worker printed no listen address")
		}
		w.addr = addr
		return w, nil
	case <-time.After(10 * time.Second):
		w.kill()
		return nil, fmt.Errorf("worker did not announce its address in time")
	}
}

// auditMatch records one two-player match (cheat may be nil) and compares
// the serial audit of both players against the dispatched audit through
// the given backend. The spot-recheck seed is filled in from the scenario.
func auditMatch(name string, cheat *game.Cheat, opts audit.DistOptions) {
	cfg := game.ScenarioConfig{
		Players: 2, Mode: avmm.ModeAVMMRSA, Cost: avmm.DefaultCostModel(),
		Seed: 2024, SnapshotEveryNs: matchNs / 3, FakeSignatures: true,
	}
	if cheat != nil {
		cfg.CheatPlayer = 1
		cfg.Cheat = cheat
	}
	s, err := game.NewScenario(cfg)
	if err != nil {
		failf("%s: building scenario: %v", name, err)
		return
	}
	s.Run(matchNs)
	for _, node := range []string{"player1", "player2"} {
		serial, err := s.AuditNode(sig.NodeID(node))
		if err != nil {
			failf("%s/%s: serial audit: %v", name, node, err)
			continue
		}
		opts.SpotRecheckSeed = cfg.Seed
		dist, dstats, err := s.AuditNodeDist(sig.NodeID(node), opts)
		if err != nil {
			failf("%s/%s: dispatched audit: %v", name, node, err)
			continue
		}
		if !reflect.DeepEqual(serial, dist) {
			failf("%s/%s: verdict divergence:\n  serial: %+v\n  dist:   %+v", name, node, serial, dist)
			continue
		}
		if dstats.SpotMismatches != 0 {
			failf("%s/%s: honest workers produced %d spot mismatches", name, node, dstats.SpotMismatches)
		}
		cheater := cheat != nil && node == "player1"
		if serial.Passed == cheater {
			// Not a divergence, but the smoke would be vacuous: a cheater
			// that passes (or an honest player that faults) means the
			// scenario no longer exercises what it claims to.
			failf("%s/%s: serial passed=%v but cheater=%v", name, node, serial.Passed, cheater)
		}
	}
}

// expectExit runs a command and checks its exit code.
func expectExit(want int, bin string, args ...string) {
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	err := cmd.Run()
	got := 0
	if ee, ok := err.(*exec.ExitError); ok {
		got = ee.ExitCode()
	} else if err != nil {
		failf("%s %s: %v", bin, strings.Join(args, " "), err)
		return
	}
	if got != want {
		failf("%s %s: exit %d, want %d", bin, strings.Join(args, " "), got, want)
	}
}

func main() {
	auditBin := flag.String("audit-bin", "bin/avm-audit", "path to the avm-audit binary")
	runBin := flag.String("run-bin", "bin/avm-run", "path to the avm-run binary")
	workers := flag.Int("workers", 3, "loopback worker processes to start")
	cheats := flag.String("cheats", "all", `comma-separated catalog cheats to dispatch, or "all"`)
	flag.Parse()

	mustWorker := func() *workerProc {
		w, err := startWorker(*auditBin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dist_smoke: starting worker: %v\n", err)
			os.Exit(1)
		}
		return w
	}
	var addrs []string
	for i := 0; i < *workers; i++ {
		w := mustWorker()
		defer w.kill()
		addrs = append(addrs, w.addr)
	}
	fmt.Printf("dist_smoke: %d workers on %s\n", *workers, strings.Join(addrs, ", "))

	// Phase 1: the cheat catalog, serial vs TCP-dispatched, byte-identical.
	catalog := game.Catalog()
	if *cheats != "all" {
		catalog = catalog[:0]
		for _, nm := range strings.Split(*cheats, ",") {
			c, err := game.CatalogByName(strings.TrimSpace(nm))
			if err != nil {
				fmt.Fprintln(os.Stderr, "dist_smoke:", err)
				os.Exit(1)
			}
			catalog = append(catalog, c)
		}
	}
	tcpOpts := audit.DistOptions{
		Backend:       &audit.TCPBackend{Addrs: addrs, JobTimeout: 60 * time.Second},
		EngineOptions: audit.EngineOptions{SpotRecheckFraction: 0.25},
	}
	start := time.Now()
	auditMatch("clean", nil, tcpOpts)
	for _, c := range catalog {
		before := failures
		auditMatch(c.Name, c, tcpOpts)
		status := "ok"
		if failures > before {
			status = "DIVERGED"
		}
		fmt.Printf("dist_smoke: %-24s %s\n", c.Name, status)
	}
	fmt.Printf("dist_smoke: catalog phase done in %v (%d matches)\n",
		time.Since(start).Round(time.Millisecond), len(catalog)+1)

	// Chaos phase: the same catalog through the long-running coordinator
	// while the fleet churns. Local fallback is off, so every verdict comes
	// from a real worker process; one worker is SIGKILLed a third of the
	// way through (its in-flight epochs must be re-dispatched after the
	// connection drops) and a replacement hot-joins two thirds through.
	var fleet []*workerProc
	for i := 0; i < 3; i++ {
		w := mustWorker()
		defer w.kill()
		fleet = append(fleet, w)
	}
	coord := audit.NewCoordinator(audit.CoordinatorConfig{
		Pipeline: 2, JobTimeout: 60 * time.Second, DisableLocalFallback: true,
	})
	for _, w := range fleet {
		coord.AddWorker(w.addr)
	}
	coordOpts := audit.DistOptions{Backend: coord.Backend(), EngineOptions: audit.EngineOptions{SpotRecheckFraction: 0.25}}
	killAt, joinAt := len(catalog)/3, 2*len(catalog)/3
	start = time.Now()
	auditMatch("chaos/clean", nil, coordOpts)
	for i, c := range catalog {
		if i == killAt {
			fmt.Printf("dist_smoke: SIGKILL worker %s mid-catalog\n", fleet[0].addr)
			fleet[0].kill()
		}
		if i == joinAt {
			repl := mustWorker()
			defer repl.kill()
			coord.RemoveWorker(fleet[0].addr)
			coord.AddWorker(repl.addr)
			fmt.Printf("dist_smoke: hot-joined replacement worker %s\n", repl.addr)
		}
		before := failures
		auditMatch("chaos/"+c.Name, c, coordOpts)
		status := "ok"
		if failures > before {
			status = "DIVERGED"
		}
		fmt.Printf("dist_smoke: chaos %-24s %s\n", c.Name, status)
	}
	fs := coord.Stats()
	coord.Close()
	fmt.Printf("dist_smoke: chaos phase done in %v (%d matches; %d epochs, %d retries, %d heartbeat timeouts, %d redials)\n",
		time.Since(start).Round(time.Millisecond), len(catalog)+1,
		fs.EpochsDone, fs.Retries, fs.HeartbeatTimeouts, fs.Redials)
	if fs.LocalFallbackEpochs != 0 {
		failf("chaos phase replayed %d epochs locally with fallback disabled", fs.LocalFallbackEpochs)
	}

	// Phase 2: the offline workflow through the real binaries, asserting
	// the documented exit codes.
	tmp, err := os.MkdirTemp("", "dist-smoke-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dist_smoke:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(tmp)
	cleanDir := filepath.Join(tmp, "clean")
	cheatDir := filepath.Join(tmp, "cheat")
	expectExit(0, *runBin, "-scenario", "game", "-seconds", "6", "-seed", "3", "-out", cleanDir)
	expectExit(0, *runBin, "-scenario", "game", "-seconds", "6", "-seed", "3", "-cheat", "aimbot", "-out", cheatDir)
	dispatchArg := strings.Join(addrs, ",")
	expectExit(0, *auditBin, "-dir", cleanDir, "-dispatch", dispatchArg)                         // clean ⇒ 0
	expectExit(1, *auditBin, "-dir", cheatDir, "-dispatch", dispatchArg, "-spot", "1")           // fault ⇒ 1
	expectExit(1, *auditBin, "-dir", cheatDir)                                                   // serial agrees ⇒ 1
	expectExit(2, *auditBin, "-dir", cleanDir, "-dispatch", "127.0.0.1:1", "-job-timeout", "2s") // dead worker ⇒ 2
	expectExit(2, *auditBin, "-dir", filepath.Join(tmp, "missing"))                              // bad recording ⇒ 2

	// The -coordinate mode honors the same contract: a dead fleet only
	// fails the audit when local fallback is off.
	expectExit(0, *auditBin, "-dir", cleanDir, "-coordinate", dispatchArg)               // clean ⇒ 0
	expectExit(1, *auditBin, "-dir", cheatDir, "-coordinate", dispatchArg, "-spot", "1") // fault ⇒ 1
	expectExit(0, *auditBin, "-dir", cleanDir, "-coordinate", "127.0.0.1:1",
		"-job-timeout", "2s") // dead fleet, local fallback ⇒ 0
	expectExit(2, *auditBin, "-dir", cleanDir, "-coordinate", "127.0.0.1:1",
		"-local-fallback=false", "-job-timeout", "2s") // dead fleet, no fallback ⇒ 2

	// A SIGTERMed worker must drain gracefully: finish in-flight epochs,
	// refuse new jobs, exit 0.
	drainer := mustWorker()
	if err := drainer.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		failf("signaling drain worker: %v", err)
	} else if werr := drainer.cmd.Wait(); werr != nil {
		failf("SIGTERMed worker should drain and exit 0, got: %v", werr)
	} else {
		fmt.Println("dist_smoke: SIGTERMed worker drained cleanly (exit 0)")
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "dist_smoke: %d failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("dist_smoke: all verdicts byte-identical; exit codes stable")
}
