// Command evidence_gen prints the worked example embedded in
// docs/EVIDENCE.md: a minimal AuditDeltaJob, its exact wire bytes, and
// the intermediate values of the hand verification. Scratch tool; not
// part of the build gates.
package main

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/tevlog"
	"repro/internal/wire"
)

func main() {
	// Two entries of a boot epoch: one nondet event, one send.
	e1 := tevlog.Entry{Seq: 1, Type: tevlog.TypeNondet, Content: []byte("in:42")}
	e2 := tevlog.Entry{Seq: 2, Type: tevlog.TypeSend, Content: []byte("m1->n2")}
	entries := []tevlog.Entry{e1, e2}
	if err := tevlog.Rechain(tevlog.Hash{}, entries); err != nil {
		panic(err)
	}

	job := &wire.AuditDeltaJob{
		Index:     0,
		StartSnap: 0,
		StartSeq:  0,
		BaseSnap:  0,
		Entries:   entries,
	}
	b := job.Marshal()
	fmt.Printf("wire bytes (%d):\n", len(b))
	for i := 0; i < len(b); i += 16 {
		end := i + 16
		if end > len(b) {
			end = len(b)
		}
		fmt.Printf("  %02x\n", b[i:end])
	}

	// Hand chain computation for entry 1.
	c1 := sha256.Sum256(e1.Content)
	var hdr [9]byte
	binary.BigEndian.PutUint64(hdr[0:8], e1.Seq)
	hdr[8] = byte(e1.Type)
	h := sha256.New()
	var zero tevlog.Hash
	h.Write(zero[:])
	h.Write(hdr[:])
	h.Write(c1[:])
	var h1 tevlog.Hash
	h.Sum(h1[:0])

	fmt.Printf("H(c1)          = %x\n", c1)
	fmt.Printf("hdr1           = %x\n", hdr)
	fmt.Printf("h1 (hand)      = %x\n", h1)
	fmt.Printf("h1 (Rechain)   = %x\n", entries[0].Hash)

	c2 := sha256.Sum256(e2.Content)
	binary.BigEndian.PutUint64(hdr[0:8], e2.Seq)
	hdr[8] = byte(e2.Type)
	h.Reset()
	h.Write(entries[0].Hash[:])
	h.Write(hdr[:])
	h.Write(c2[:])
	var h2 tevlog.Hash
	h.Sum(h2[:0])
	fmt.Printf("H(c2)          = %x\n", c2)
	fmt.Printf("h2 (hand)      = %x\n", h2)
	fmt.Printf("h2 (Rechain)   = %x\n", entries[1].Hash)

	fmt.Printf("types: nondet=%d send=%d\n", tevlog.TypeNondet, tevlog.TypeSend)

	// Round-trip check.
	j2, err := wire.ParseAuditDeltaJob(b)
	if err != nil {
		panic(err)
	}
	fmt.Printf("reparse: %d entries, start seq %d\n", len(j2.Entries), j2.StartSeq)
}
